//! Numeric training with historical-embedding reuse policies.
//!
//! This is the *real* (non-simulated) training path behind the Fig 16
//! convergence curves: stale embeddings are actually spliced into the
//! bottom layer and gradients through them are actually cut, so accuracy
//! differences between policies are measured, not modelled.

use crate::pool::BatchBuffers;
use crate::refresh::{CpuPart, InlineRefresh, RefreshBackend, RefreshOutput, RefreshTask};
use neutron_cache::EmbeddingStore;
use neutron_graph::{Dataset, VertexId};
use neutron_nn::loss::cross_entropy;
use neutron_nn::metrics::accuracy;
use neutron_nn::model::{GnnModel, ModelConfig};
use neutron_nn::optim::{Optimizer, Sgd};
use neutron_nn::LayerKind;
use neutron_sample::{
    BatchIterator, Block, EpochBatches, Fanout, HotSet, NeighborSampler, PreSampler,
};
use neutron_tensor::Matrix;
use std::sync::Arc;

/// Historical-embedding reuse policy.
#[derive(Clone, Debug)]
pub enum ReusePolicy {
    /// No reuse — exact sample-gather-train (DGL / PaGraph / GNNLab all
    /// share these semantics; their curves coincide in Fig 16).
    Exact,
    /// GAS-like: reuse bottom-layer embeddings of **all** vertices with no
    /// staleness control within an epoch.
    GasLike,
    /// NeutronOrch: reuse only hot vertices, refreshed every super-batch,
    /// version gap strictly `< 2n` (§4.2.2).
    HotnessAware {
        /// Fraction of vertices treated as hot.
        hot_ratio: f64,
        /// Batches per super-batch (`n`).
        super_batch: usize,
    },
}

impl ReusePolicy {
    /// Label used in convergence plots.
    pub fn label(&self) -> &'static str {
        match self {
            ReusePolicy::Exact => "Exact (DGL/PaGraph/GNNLab)",
            ReusePolicy::GasLike => "GAS",
            ReusePolicy::HotnessAware { .. } => "NeutronOrch",
        }
    }
}

/// Trainer configuration.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// GNN architecture.
    pub kind: LayerKind,
    /// Model depth.
    pub layers: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Sampling/shuffling seed.
    pub seed: u64,
    /// Reuse policy under test.
    pub policy: ReusePolicy,
}

impl TrainerConfig {
    /// A small-scale default suitable for the convergence replicas.
    pub fn convergence_default(kind: LayerKind, policy: ReusePolicy) -> Self {
        Self {
            kind,
            layers: 2,
            batch_size: 256,
            lr: 0.3,
            seed: 0xacc,
            policy,
        }
    }
}

/// Epoch-level observation.
#[derive(Clone, Copy, Debug)]
pub struct EpochObservation {
    /// Mean training loss over the epoch's batches.
    pub train_loss: f32,
    /// Accuracy on the held-out test vertices.
    pub test_accuracy: f64,
    /// Largest embedding version gap observed so far (0 for exact).
    pub max_staleness: u64,
    /// §4.3's tolerated staleness bound `ε = max‖ΔW‖∞ × 2n`, measured over
    /// this epoch's super-batches (0 when no reuse policy is active).
    pub staleness_epsilon: f32,
}

/// The deterministic per-batch sampling seed shared by the sequential
/// trainer and the pipelined executor: any executor that derives block
/// sampling from `(config seed, epoch, batch index)` this way reproduces
/// the exact training trajectory regardless of thread count. Epoch and
/// index occupy disjoint bit ranges so seeds never collide between epochs,
/// however many batches an epoch has.
pub fn batch_sample_seed(config_seed: u64, epoch: usize, index: usize) -> u64 {
    config_seed ^ ((epoch as u64) << 32 | index as u64)
}

/// A batch after the CPU-side sample + gather stages: everything the train
/// stage needs, detached from the trainer so it can be produced by worker
/// threads.
pub struct PreparedBatch {
    /// Position of this batch within its epoch (train order).
    pub index: usize,
    /// Bottom-first sampled block stack.
    pub blocks: Vec<Block>,
    /// Raw features of `blocks[0].src()`, one row per source vertex.
    pub features: Matrix,
    /// Spent staging buffers that accumulated while preparing this batch;
    /// the engine's recycler folds the blocks and feature buffer in after
    /// training and returns the bundle to the pool. Empty on the allocating
    /// (sequential) path.
    pub scrap: BatchBuffers,
}

/// What one epoch's batch loop produced, before test-set evaluation —
/// see [`ConvergenceTrainer::train_batches`].
pub struct BatchLoopStats {
    /// Per-batch training losses, in epoch order.
    pub losses: Vec<f32>,
    /// §4.3's `ε = max‖ΔW‖∞ × 2n` over the epoch's super-batches (0 when
    /// no reuse policy is active).
    pub staleness_epsilon: f32,
}

/// A refresh created at one super-batch boundary, held until the next
/// boundary publishes it — the double buffer of the Fig 8 pipeline. Rows
/// split between the training device (`gpu`, computed at creation) and the
/// CPU share (`cpu`, possibly still in flight on a refresh worker).
struct PendingRefresh {
    gpu: RefreshOutput,
    cpu: CpuPart,
}

/// The in-flight refresh double buffer, materialised for a checkpoint.
/// Captured only after [`ConvergenceTrainer::settle_refresh`], so the CPU
/// share is always concrete rows (never a task on a worker).
#[derive(Clone, Debug, PartialEq)]
pub struct PendingSnapshot {
    /// Version stamp of the training-device share.
    pub gpu_version: u64,
    /// Rows of the training-device share.
    pub gpu_rows: Vec<(VertexId, Vec<f32>)>,
    /// Version stamp of the CPU share.
    pub cpu_version: u64,
    /// Rows of the CPU share.
    pub cpu_rows: Vec<(VertexId, Vec<f32>)>,
}

/// Everything about a [`ConvergenceTrainer`] that mutates across epochs —
/// the complete checkpoint payload. Everything *not* here (hot set, model
/// shapes, sampler, batch iterator) is a pure function of `(dataset,
/// config)` and is rebuilt deterministically by [`ConvergenceTrainer::new`];
/// all sampling/shuffling randomness is derived per `(seed, epoch, index)`,
/// so no generator state exists to capture. Restoring this state into a
/// freshly built trainer and training the remaining epochs is bit-identical
/// to never having stopped.
#[derive(Clone, Debug)]
pub struct TrainerState {
    /// Model parameter values, in the model's stable parameter order.
    pub params: Vec<Matrix>,
    /// Global batch counter == parameter version (§4.2.2).
    pub version: u64,
    /// The §4.1.3 hybrid-split knob (numerically inert, but restored so a
    /// resumed session re-plans from where it left off).
    pub refresh_cpu_fraction: f64,
    /// Historical-embedding store image, including staleness counters.
    pub store: Option<neutron_cache::StoreSnapshot>,
    /// The refresh awaiting publication at the next super-batch boundary.
    pub pending: Option<PendingSnapshot>,
}

/// A numeric trainer over a fully materialised [`Dataset`].
pub struct ConvergenceTrainer {
    dataset: Arc<Dataset>,
    config: TrainerConfig,
    model: GnnModel,
    sampler: NeighborSampler,
    batches: BatchIterator,
    optimizer: Sgd,
    store: Option<EmbeddingStore>,
    hot: Option<HotSet>,
    /// Global batch counter == model parameter version (§4.2.2).
    version: u64,
    /// Share of the hot set whose refresh the CPU backend computes; the
    /// remainder is computed by the training device at the boundary. Set by
    /// the engine's occupancy feedback (§4.1.3); numerically inert.
    refresh_cpu_fraction: f64,
    /// The refresh in flight between two super-batch boundaries.
    pending_refresh: Option<PendingRefresh>,
    /// Reusable sampler scratch for the boundary's training-device refresh
    /// share (avoids an `O(|V|)` buffer init per super-batch).
    refresh_scratch: neutron_sample::SamplerScratch,
}

impl ConvergenceTrainer {
    /// Builds the trainer; `dataset` must carry features
    /// ([`neutron_graph::DatasetSpec::build_full`]).
    pub fn new(dataset: Dataset, config: TrainerConfig) -> Self {
        assert!(
            dataset.features.is_some(),
            "convergence training needs features"
        );
        let model_cfg = ModelConfig {
            kind: config.kind,
            feature_dim: dataset.spec.feature_dim,
            hidden_dim: dataset.spec.hidden_dim,
            num_classes: dataset.spec.num_classes,
            layers: config.layers,
            seed: config.seed ^ 0x5eed,
        };
        let model = GnnModel::new(model_cfg);
        let fanout = Fanout::paper_default(config.layers);
        let sampler = NeighborSampler::new(fanout);
        let batches = BatchIterator::new(dataset.train.clone(), config.batch_size, config.seed);
        let (store, hot) = match &config.policy {
            ReusePolicy::Exact => (None, None),
            ReusePolicy::GasLike => (
                Some(EmbeddingStore::new(dataset.spec.hidden_dim, None)),
                None,
            ),
            ReusePolicy::HotnessAware {
                hot_ratio,
                super_batch,
            } => {
                let hotness = PreSampler::new(1).estimate(
                    &dataset.csr,
                    &sampler,
                    &batches,
                    config.seed ^ 0x407,
                );
                let hot = hotness.hot_set(*hot_ratio);
                // Strict bound 2n−1 (§4.2.2's largest possible gap).
                let bound = (2 * super_batch - 1) as u64;
                (
                    Some(EmbeddingStore::new(dataset.spec.hidden_dim, Some(bound))),
                    Some(hot),
                )
            }
        };
        let optimizer = Sgd::new(config.lr);
        Self {
            dataset: Arc::new(dataset),
            config,
            model,
            sampler,
            batches,
            optimizer,
            store,
            hot,
            version: 0,
            refresh_cpu_fraction: 1.0,
            pending_refresh: None,
            refresh_scratch: neutron_sample::SamplerScratch::new(),
        }
    }

    /// Shared handle to the dataset, for executors whose sample/gather
    /// stages run on worker threads.
    pub fn dataset_handle(&self) -> Arc<Dataset> {
        Arc::clone(&self.dataset)
    }

    /// The neighbor sampler (cloneable for worker threads).
    pub fn sampler(&self) -> &NeighborSampler {
        &self.sampler
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// The shuffled batches of `epoch`, in train order.
    pub fn epoch_batches(&self, epoch: usize) -> EpochBatches {
        self.batches.epoch_batches(epoch)
    }

    /// [`Self::epoch_batches`] into a recycled buffer (see
    /// [`BatchIterator::fill_epoch_batches`]).
    pub fn fill_epoch_batches(&self, epoch: usize, out: &mut EpochBatches) {
        self.batches.fill_epoch_batches(epoch, out);
    }

    /// The gather stage: collects the raw feature rows of `src` — the one
    /// place the "Gather (FC)" work is implemented, shared by the
    /// sequential trainer, the pipelined executor's gather workers, and
    /// the hot-embedding refresh. Gathers by the sampler's `u32` ids
    /// directly; no widened index vector is built.
    pub fn gather_features(dataset: &Dataset, src: &[VertexId]) -> Matrix {
        dataset.features().gather_rows_u32(src)
    }

    /// Runs the CPU sample + gather stages for one batch. Pure with respect
    /// to trainer state, so any number of worker threads may prepare batches
    /// concurrently; determinism is guaranteed by [`batch_sample_seed`].
    pub fn prepare_batch(
        dataset: &Dataset,
        sampler: &NeighborSampler,
        config_seed: u64,
        epoch: usize,
        index: usize,
        batch: &[VertexId],
    ) -> PreparedBatch {
        let seed = batch_sample_seed(config_seed, epoch, index);
        let blocks = sampler.sample_batch(&dataset.csr, batch, seed);
        let features = Self::gather_features(dataset, blocks[0].src());
        PreparedBatch {
            index,
            blocks,
            features,
            scrap: BatchBuffers::new(),
        }
    }

    /// Trains one epoch and reports loss/accuracy/staleness, including the
    /// §4.3 weight-variation monitor `ε = max‖ΔW‖∞ × 2n` measured across
    /// the epoch's super-batches.
    pub fn train_epoch(&mut self, epoch: usize) -> EpochObservation {
        let dataset = self.dataset_handle();
        let sampler = self.sampler.clone();
        let config_seed = self.config.seed;
        let epoch_batches = self.batches.epoch_batches(epoch);
        let items = epoch_batches.iter().enumerate().map(|(i, batch)| {
            Self::prepare_batch(&dataset, &sampler, config_seed, epoch, i, batch)
        });
        self.train_epoch_with(items)
    }

    /// Trains one epoch from externally prepared batches — the entry point
    /// of the pipelined executor. Batches must arrive in epoch order
    /// (`index` 0, 1, 2, …); out-of-order delivery is a caller bug, caught
    /// by an assertion, because the super-batch barrier and the model
    /// version counter both advance with the train order.
    pub fn train_epoch_with<I>(&mut self, prepared: I) -> EpochObservation
    where
        I: IntoIterator<Item = PreparedBatch>,
    {
        let stats = self.train_batches(prepared);
        self.observe_epoch(stats)
    }

    /// The epoch's batch loop alone — training, the super-batch barrier and
    /// the §4.3 weight-variation monitor, but no test-set evaluation.
    /// Executors time this separately so throughput numbers measure
    /// training, not inference. Refresh work runs inline on the calling
    /// thread; see [`Self::train_batches_with`] for executor-supplied
    /// refresh backends.
    pub fn train_batches<I>(&mut self, prepared: I) -> BatchLoopStats
    where
        I: IntoIterator<Item = PreparedBatch>,
    {
        self.train_batches_with(prepared, &mut InlineRefresh::default())
    }

    /// [`Self::train_batches`] with the CPU share of each super-batch
    /// refresh delegated to `backend`. The super-batch boundary is
    /// **publish-then-launch**: rows computed from the *previous* boundary's
    /// parameter snapshot are installed into the store, then a new
    /// [`RefreshTask`] is captured from the current parameters and handed to
    /// the backend to compute during the upcoming super-batch. Embeddings
    /// read during super-batch `k` therefore carry the version of boundary
    /// `k−1`, giving a gap in `[n, 2n−1]` — the paper's `< 2n` bound — while
    /// the refresh itself overlaps training. Numbers are independent of the
    /// backend: the task is a pure function of its snapshot (see
    /// [`crate::refresh`]).
    pub fn train_batches_with<I>(
        &mut self,
        prepared: I,
        backend: &mut dyn RefreshBackend,
    ) -> BatchLoopStats
    where
        I: IntoIterator<Item = PreparedBatch>,
    {
        self.train_batches_recycling(prepared, backend, |_| {})
    }

    /// [`Self::train_batches_with`] handing each batch to `recycle` once it
    /// has trained — the hook the engine uses to dismantle spent batches
    /// into the buffer pool. Runs strictly after the batch's optimizer step
    /// and version bump, so recycling can never affect numerics.
    pub fn train_batches_recycling<I, R>(
        &mut self,
        prepared: I,
        backend: &mut dyn RefreshBackend,
        mut recycle: R,
    ) -> BatchLoopStats
    where
        I: IntoIterator<Item = PreparedBatch>,
        R: FnMut(PreparedBatch),
    {
        let mut losses = Vec::new();
        let super_n = match &self.config.policy {
            ReusePolicy::HotnessAware { super_batch, .. } => *super_batch,
            _ => usize::MAX,
        };
        let mut max_delta = 0.0f32;
        let mut snapshot = (super_n != usize::MAX).then(|| self.model.snapshot());
        for (bi, item) in prepared.into_iter().enumerate() {
            assert_eq!(
                item.index, bi,
                "prepared batches must arrive in epoch order"
            );
            if super_n != usize::MAX && bi % super_n == 0 {
                // Super-batch boundary: measure how far the weights moved
                // during the last super-batch, publish the refresh computed
                // from the previous boundary's snapshot, and launch the next.
                if let Some(snap) = &snapshot {
                    max_delta = max_delta.max(self.model.max_weight_delta(snap));
                    snapshot = Some(self.model.snapshot());
                }
                self.refresh_boundary(backend);
            }
            losses.push(self.train_prepared(&item.blocks, &item.features));
            self.version += 1;
            recycle(item);
        }
        if let Some(snap) = &snapshot {
            max_delta = max_delta.max(self.model.max_weight_delta(snap));
        }
        let staleness_epsilon = if super_n == usize::MAX {
            0.0
        } else {
            max_delta * 2.0 * super_n as f32
        };
        BatchLoopStats {
            losses,
            staleness_epsilon,
        }
    }

    /// The data-parallel analogue of [`Self::train_batches_recycling`]:
    /// every item of `steps` carries one prepared batch **per replica**, in
    /// fixed replica order. Each replica's gradients are computed at the
    /// same parameter version ([`Self::grad_prepared`]), tree-averaged
    /// ([`neutron_nn::tree_average`] — order-independent by construction),
    /// and applied in one shared optimizer step; the super-batch refresh
    /// boundary fires on *step* index exactly as the single-replica loop
    /// fires on batch index. A one-replica step takes the plain
    /// [`Self::train_prepared`] path (no clone, no averaging), so R=1 is
    /// bit-identical to [`Self::train_batches_recycling`] by construction.
    /// The recorded per-step loss is the replica mean (the loss of the
    /// averaged gradient's mini-batch union).
    pub fn train_steps_replicated<I, R>(
        &mut self,
        steps: I,
        backend: &mut dyn RefreshBackend,
        mut recycle: R,
    ) -> BatchLoopStats
    where
        I: IntoIterator<Item = Vec<PreparedBatch>>,
        R: FnMut(PreparedBatch),
    {
        let mut losses = Vec::new();
        let super_n = match &self.config.policy {
            ReusePolicy::HotnessAware { super_batch, .. } => *super_batch,
            _ => usize::MAX,
        };
        let mut max_delta = 0.0f32;
        let mut snapshot = (super_n != usize::MAX).then(|| self.model.snapshot());
        for (si, step) in steps.into_iter().enumerate() {
            assert!(!step.is_empty(), "a step needs at least one replica batch");
            if super_n != usize::MAX && si % super_n == 0 {
                if let Some(snap) = &snapshot {
                    max_delta = max_delta.max(self.model.max_weight_delta(snap));
                    snapshot = Some(self.model.snapshot());
                }
                self.refresh_boundary(backend);
            }
            if step.len() == 1 {
                let item = step.into_iter().next().unwrap();
                assert_eq!(item.index, si, "replica batches must arrive in step order");
                losses.push(self.train_prepared(&item.blocks, &item.features));
                self.version += 1;
                recycle(item);
            } else {
                let replicas = step.len();
                let mut groups = Vec::with_capacity(replicas);
                let mut loss_sum = 0.0f32;
                for item in &step {
                    assert_eq!(item.index, si, "replica batches must arrive in step order");
                    loss_sum += self.grad_prepared(&item.blocks, &item.features);
                    groups.push(self.clone_grads());
                }
                self.apply_averaged_grads(neutron_nn::tree_average(groups));
                self.version += 1;
                losses.push(loss_sum / replicas as f32);
                for item in step {
                    recycle(item);
                }
            }
        }
        if let Some(snap) = &snapshot {
            max_delta = max_delta.max(self.model.max_weight_delta(snap));
        }
        let staleness_epsilon = if super_n == usize::MAX {
            0.0
        } else {
            max_delta * 2.0 * super_n as f32
        };
        BatchLoopStats {
            losses,
            staleness_epsilon,
        }
    }

    /// Completes an epoch observation from batch-loop statistics, running
    /// the (exact, full-neighbor) test-set evaluation.
    pub fn observe_epoch(&self, stats: BatchLoopStats) -> EpochObservation {
        EpochObservation {
            train_loss: stats.losses.iter().sum::<f32>() / stats.losses.len().max(1) as f32,
            test_accuracy: self.evaluate(),
            max_staleness: self.max_staleness(),
            staleness_epsilon: stats.staleness_epsilon,
        }
    }

    /// The train stage: forward/backward/step over one prepared batch,
    /// splicing historical embeddings under the configured policy.
    fn train_prepared(&mut self, blocks: &[Block], feats: &Matrix) -> f32 {
        let loss = self.grad_prepared(blocks, feats);
        let mut params = self.model.params_mut();
        self.optimizer.step(&mut params);
        loss
    }

    /// Forward + backward over one prepared batch **without** the optimizer
    /// step: on return every parameter's `grad` holds this batch's
    /// gradients and the model weights are untouched. This is the
    /// per-replica half of a data-parallel step — replicas call it in turn
    /// at the same parameter version, the averaged gradients are installed
    /// with [`Self::apply_averaged_grads`], and one shared step follows.
    /// [`Self::train_prepared`] is exactly this followed by the step, so
    /// the split cannot change single-replica numerics.
    pub fn grad_prepared(&mut self, blocks: &[Block], feats: &Matrix) -> f32 {
        let bottom = &blocks[0];
        // Collect bottom-layer overrides from the HE store.
        let mut overrides: Vec<(usize, Vec<f32>)> = Vec::new();
        if let Some(store) = &mut self.store {
            for (row, &v) in bottom.dst().iter().enumerate() {
                let eligible = match (&self.hot, &self.config.policy) {
                    (Some(hot), _) => hot.contains(v),
                    (None, ReusePolicy::GasLike) => true,
                    _ => false,
                };
                if !eligible {
                    continue;
                }
                if let Some((stored, _gap)) = store
                    .get(v, self.version)
                    .expect("super-batch refresh keeps every entry within bound")
                {
                    overrides.push((row, stored.to_vec()));
                }
            }
        }
        let frozen: Vec<usize> = overrides.iter().map(|(r, _)| *r).collect();
        let pass = self
            .model
            .forward_with_bottom_override(blocks, feats, &overrides);
        // GAS records the embeddings it just computed (for the non-frozen
        // rows) so later batches can reuse them.
        if matches!(self.config.policy, ReusePolicy::GasLike) {
            if let Some(store) = &mut self.store {
                let bottom_out = &pass.outputs[0];
                for (row, &v) in bottom.dst().iter().enumerate() {
                    if !frozen.contains(&row) {
                        store.put(v, bottom_out.row(row).to_vec(), self.version);
                    }
                }
            }
        }
        let labels: Vec<usize> = blocks
            .last()
            .unwrap()
            .dst()
            .iter()
            .map(|&v| self.dataset.labels[v as usize])
            .collect();
        let lr = cross_entropy(pass.logits(), &labels);
        self.model.zero_grad();
        let _ = self
            .model
            .backward_with_mask(blocks, pass, &lr.d_logits, Some(&frozen));
        lr.loss
    }

    /// Clones the gradients currently accumulated on the model — one
    /// replica's contribution to a data-parallel all-reduce.
    pub fn clone_grads(&self) -> neutron_nn::GradSet {
        self.model.params().iter().map(|p| p.grad.clone()).collect()
    }

    /// Installs externally averaged gradients and applies one shared
    /// optimizer step (no version bump — the caller owns step accounting
    /// via [`Self::end_step`]).
    pub fn apply_averaged_grads(&mut self, grads: neutron_nn::GradSet) {
        let mut params = self.model.params_mut();
        assert_eq!(params.len(), grads.len(), "gradient set shape mismatch");
        for (p, g) in params.iter_mut().zip(grads) {
            assert_eq!(p.grad.shape(), g.shape());
            p.grad = g;
        }
        self.optimizer.step(&mut params);
    }

    /// Total bytes of the model parameters — the payload one gradient
    /// all-reduce moves (gradients mirror parameter shapes exactly).
    pub fn model_bytes(&self) -> u64 {
        self.model.params().iter().map(|p| p.nbytes() as u64).sum()
    }

    /// One super-batch boundary of the double-buffered refresh pipeline:
    /// publish the rows prepared during the last super-batch, then capture
    /// a fresh parameter snapshot and launch the next refresh. The hot set
    /// is split by [`Self::refresh_cpu_fraction`]: the training device
    /// computes its share immediately (it has the hot features cached,
    /// §4.1.3), the CPU share goes to `backend` — inline for the sequential
    /// trainer, a dedicated worker under the engine.
    fn refresh_boundary(&mut self, backend: &mut dyn RefreshBackend) {
        let hot = match &self.hot {
            Some(h) if !h.is_empty() => h,
            _ => return,
        };
        // Publish: the refresh computed from the *previous* boundary's
        // snapshot becomes visible now, stamped with that older version.
        if let Some(pending) = self.pending_refresh.take() {
            let cpu = match pending.cpu {
                CpuPart::Ready(out) => out,
                CpuPart::Submitted => backend.collect(),
            };
            if let Some(store) = &mut self.store {
                store.put_rows(cpu.rows, cpu.version);
                store.put_rows(pending.gpu.rows, pending.gpu.version);
            }
        }
        // Launch: snapshot the bottom layer at the current version and
        // split the worklist. Both partitions are pure functions of the
        // same snapshot and seed, so the split never changes the rows.
        let (cpu_vertices, gpu_vertices) = hot.split_cpu_gpu(self.refresh_cpu_fraction);
        let fanout0 = self.sampler.fanout().at(0);
        let version = self.version;
        let seed = version ^ 0x5b;
        let make = |vertices: Vec<VertexId>, trainer: &Self| {
            RefreshTask::new(
                Arc::clone(&trainer.dataset),
                trainer.model.layers()[0].clone(),
                trainer.sampler.clone(),
                vertices,
                fanout0,
                version,
                seed,
            )
        };
        let gpu_task = make(gpu_vertices, self);
        let cpu_task = make(cpu_vertices, self);
        let gpu = gpu_task.run_with_scratch(&mut self.refresh_scratch);
        let cpu = backend.submit(cpu_task);
        self.pending_refresh = Some(PendingRefresh { gpu, cpu });
    }

    /// Resolves any refresh still in flight on `backend` so the trainer can
    /// outlive the backend (e.g. the end of an engine session): a
    /// `Submitted` CPU share is collected and held as ready rows, to be
    /// published at whatever boundary comes next.
    pub fn settle_refresh(&mut self, backend: &mut dyn RefreshBackend) {
        if let Some(pending) = &mut self.pending_refresh {
            if matches!(pending.cpu, CpuPart::Submitted) {
                pending.cpu = CpuPart::Ready(backend.collect());
            }
        }
    }

    /// Captures the trainer's complete mutable state for a checkpoint.
    /// Settles any refresh still in flight on `backend` first: collecting a
    /// submitted task yields exactly the rows a later `collect` would (the
    /// task is a pure function of its snapshot), so settling is invisible
    /// to the training trajectory — it only makes the state serializable.
    pub fn capture_state(&mut self, backend: &mut dyn RefreshBackend) -> TrainerState {
        self.settle_refresh(backend);
        let pending = self.pending_refresh.as_ref().map(|p| {
            let cpu = match &p.cpu {
                CpuPart::Ready(out) => out,
                CpuPart::Submitted => unreachable!("settle_refresh materialised the CPU share"),
            };
            PendingSnapshot {
                gpu_version: p.gpu.version,
                gpu_rows: p.gpu.rows.clone(),
                cpu_version: cpu.version,
                cpu_rows: cpu.rows.clone(),
            }
        });
        TrainerState {
            params: self.model.snapshot(),
            version: self.version,
            refresh_cpu_fraction: self.refresh_cpu_fraction,
            store: self.store.as_ref().map(|s| s.snapshot()),
            pending,
        }
    }

    /// Overwrites the trainer's mutable state from a checkpoint — the
    /// restore half of [`Self::capture_state`]. The trainer must have been
    /// built from the same `(dataset, config)` the state was captured under
    /// (shape mismatches are rejected); everything else about it is already
    /// deterministic, so after this call the next `train_epoch(k)` is
    /// bit-identical to the uninterrupted run's epoch `k`.
    pub fn restore_state(&mut self, state: &TrainerState) -> Result<(), String> {
        {
            let mut params = self.model.params_mut();
            if params.len() != state.params.len() {
                return Err(format!(
                    "parameter count mismatch: model has {}, checkpoint has {}",
                    params.len(),
                    state.params.len()
                ));
            }
            for (i, (p, m)) in params.iter_mut().zip(&state.params).enumerate() {
                if p.value.shape() != m.shape() {
                    return Err(format!(
                        "parameter {i} shape mismatch: model {:?}, checkpoint {:?}",
                        p.value.shape(),
                        m.shape()
                    ));
                }
            }
            for (p, m) in params.iter_mut().zip(&state.params) {
                p.value.as_mut_slice().copy_from_slice(m.as_slice());
                p.grad.fill_zero();
            }
        }
        if let Some(snap) = &state.store {
            if snap.dim != self.dataset.spec.hidden_dim {
                return Err(format!(
                    "store dimension mismatch: trainer {}, checkpoint {}",
                    self.dataset.spec.hidden_dim, snap.dim
                ));
            }
        }
        self.version = state.version;
        self.refresh_cpu_fraction = state.refresh_cpu_fraction;
        self.store = state.store.as_ref().map(EmbeddingStore::from_snapshot);
        self.pending_refresh = state.pending.as_ref().map(|p| PendingRefresh {
            gpu: RefreshOutput {
                rows: p.gpu_rows.clone(),
                version: p.gpu_version,
            },
            cpu: CpuPart::Ready(RefreshOutput {
                rows: p.cpu_rows.clone(),
                version: p.cpu_version,
            }),
        });
        Ok(())
    }

    /// The hot-vertex set under `HotnessAware`, `None` otherwise.
    pub fn hot_set(&self) -> Option<&HotSet> {
        self.hot.as_ref()
    }

    /// Sets the share of the hot set refreshed by the CPU backend (the
    /// §4.1.3 hybrid split knob). Clamped to `[0, 1]`. Changing the split
    /// moves work between devices but never changes training numerics.
    pub fn set_refresh_cpu_fraction(&mut self, fraction: f64) {
        self.refresh_cpu_fraction = fraction.clamp(0.0, 1.0);
    }

    /// The current CPU share of the refresh split.
    pub fn refresh_cpu_fraction(&self) -> f64 {
        self.refresh_cpu_fraction
    }

    fn gather(&self, src: &[VertexId]) -> Matrix {
        Self::gather_features(&self.dataset, src)
    }

    /// Test accuracy with exact (non-stale, full-neighbor) inference.
    /// Hub neighborhoods are capped at 32 to bound the working set; the cap
    /// is deterministic so evaluation is reproducible.
    pub fn evaluate(&self) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for chunk in self.dataset.test.chunks(512) {
            let blocks =
                neutron_sample::full_blocks(&self.dataset.csr, chunk, self.config.layers, 32);
            let feats = self.gather(blocks[0].src());
            let pass = self.model.forward(&blocks, &feats);
            let labels: Vec<usize> = chunk
                .iter()
                .map(|&v| self.dataset.labels[v as usize])
                .collect();
            let acc = accuracy(pass.logits(), &labels);
            correct += (acc * labels.len() as f64).round() as usize;
            total += labels.len();
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Largest observed embedding version gap (0 when no reuse happened).
    pub fn max_staleness(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.max_observed_gap())
    }

    /// Number of successful embedding reuses so far.
    pub fn embedding_reuses(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.reads())
    }

    /// The policy under test.
    pub fn policy(&self) -> &ReusePolicy {
        &self.config.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_graph::DatasetSpec;

    fn trainer(policy: ReusePolicy) -> ConvergenceTrainer {
        let ds = DatasetSpec::tiny().build_full();
        let mut cfg = TrainerConfig::convergence_default(LayerKind::Gcn, policy);
        cfg.batch_size = 64;
        cfg.lr = 0.5;
        ConvergenceTrainer::new(ds, cfg)
    }

    #[test]
    fn exact_training_learns_tiny_communities() {
        let mut t = trainer(ReusePolicy::Exact);
        let first = t.train_epoch(0);
        let mut last = first;
        for e in 1..8 {
            last = t.train_epoch(e);
        }
        assert!(
            last.test_accuracy > 0.5,
            "accuracy {} too low",
            last.test_accuracy
        );
        assert!(last.train_loss < first.train_loss, "loss must decrease");
        assert_eq!(last.max_staleness, 0);
    }

    #[test]
    fn hotness_aware_respects_staleness_bound() {
        let n = 2;
        let mut t = trainer(ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: n,
        });
        for e in 0..6 {
            let obs = t.train_epoch(e);
            assert!(
                obs.max_staleness < 2 * n as u64,
                "gap {} ≥ 2n",
                obs.max_staleness
            );
        }
        assert!(
            t.embedding_reuses() > 0,
            "hot embeddings must actually be reused"
        );
    }

    #[test]
    fn hotness_aware_accuracy_close_to_exact() {
        let mut exact = trainer(ReusePolicy::Exact);
        let mut ours = trainer(ReusePolicy::HotnessAware {
            hot_ratio: 0.2,
            super_batch: 4,
        });
        let mut acc_exact = 0.0;
        let mut acc_ours = 0.0;
        for e in 0..10 {
            acc_exact = exact.train_epoch(e).test_accuracy;
            acc_ours = ours.train_epoch(e).test_accuracy;
        }
        // Paper: "accuracy loss of no more than 1%"; allow a few points of
        // slack on the tiny replica.
        assert!(
            acc_ours > acc_exact - 0.08,
            "bounded staleness cost too much: {acc_ours} vs {acc_exact}"
        );
    }

    #[test]
    fn staleness_epsilon_shrinks_as_training_settles() {
        // §4.3: convergence relies on the weights changing slowly; the
        // measured ε = max‖ΔW‖·2n should drop from the first epochs to the
        // last ones as SGD approaches a minimum.
        let mut t = trainer(ReusePolicy::HotnessAware {
            hot_ratio: 0.25,
            super_batch: 2,
        });
        let early = t.train_epoch(0).staleness_epsilon;
        let mut late = early;
        for e in 1..10 {
            late = t.train_epoch(e).staleness_epsilon;
        }
        assert!(early > 0.0, "monitor must be active under HE reuse");
        assert!(
            late < early,
            "epsilon should shrink: early {early} late {late}"
        );
        // Exact training reports no epsilon.
        let mut exact = trainer(ReusePolicy::Exact);
        assert_eq!(exact.train_epoch(0).staleness_epsilon, 0.0);
    }

    #[test]
    fn capture_restore_resumes_bit_identically() {
        let policy = || ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: 2,
        };
        let mut full = trainer(policy());
        let mut want = Vec::new();
        for e in 0..6 {
            let obs = full.train_epoch(e);
            want.push((obs.train_loss.to_bits(), obs.max_staleness));
        }
        // Kill after epoch 3, checkpoint, restore into a fresh trainer.
        let mut killed = trainer(policy());
        for e in 0..3 {
            killed.train_epoch(e);
        }
        let state = killed.capture_state(&mut InlineRefresh::default());
        let mut resumed = trainer(policy());
        resumed.restore_state(&state).unwrap();
        for (e, want) in want.iter().enumerate().skip(3) {
            let obs = resumed.train_epoch(e);
            assert_eq!(
                (obs.train_loss.to_bits(), obs.max_staleness),
                *want,
                "epoch {e} diverged after restore"
            );
        }
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let mut small = trainer(ReusePolicy::Exact);
        let state = small.capture_state(&mut InlineRefresh::default());
        let ds = DatasetSpec::tiny().build_full();
        let mut cfg = TrainerConfig::convergence_default(LayerKind::Gcn, ReusePolicy::Exact);
        cfg.layers = 3; // different parameter list
        let mut other = ConvergenceTrainer::new(ds, cfg);
        assert!(other.restore_state(&state).is_err());
    }

    #[test]
    fn gas_reuses_with_unbounded_staleness() {
        let mut t = trainer(ReusePolicy::GasLike);
        let mut max_gap = 0;
        for e in 0..4 {
            max_gap = t.train_epoch(e).max_staleness;
        }
        assert!(t.embedding_reuses() > 0);
        // With 3+ batches per epoch and no version control, gaps exceed a
        // NeutronOrch-style bound of 2n for small n.
        assert!(
            max_gap >= 2,
            "GAS-like staleness should be loose, got {max_gap}"
        );
    }
}
