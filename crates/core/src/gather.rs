//! The cache-keyed gather stage: partitioning each batch's deduped source
//! vertices into GPU-cache hits and host misses, so the hybrid planner's
//! decisions (§4.1.3) actually change measured transfer volume (Fig 6c,
//! Fig 13) instead of only moving refresh compute between devices.
//!
//! The flow per batch:
//!
//! ```text
//! blocks[0].src() --probe cache--> hits   (rows already device-resident)
//!                                  misses (host gather -> H2D transfer)
//! transfer charges *miss* bytes only; after the transfer the train stage
//! assembles the full feature matrix device-side from both halves.
//! ```
//!
//! Bit-identity: assembly reproduces, float for float, the matrix a full
//! host gather would have produced (cache rows are verbatim copies of the
//! host rows), so training results are independent of the cache budget —
//! only the byte accounting changes.

use crate::pool::BatchBuffers;
use crate::trainer::PreparedBatch;
use neutron_cache::FeatureCache;
use neutron_graph::{Dataset, VertexId};
use neutron_sample::Block;
use neutron_tensor::Matrix;

/// One batch's gathered features, split by cache residency. `miss` holds
/// the host-gathered rows (the only feature bytes the transfer stage must
/// ship); `hit_pos`/`miss_pos` are local positions into the batch's source
/// list, together covering every source vertex exactly once.
pub struct GatheredFeatures {
    miss: Matrix,
    miss_pos: Vec<u32>,
    hit_pos: Vec<u32>,
}

impl GatheredFeatures {
    /// Probes `cache` for every source vertex of `bottom` (already deduped
    /// at sampling time — no second dedup pass) and host-gathers only the
    /// misses.
    pub fn gather(dataset: &Dataset, bottom: &Block, cache: &FeatureCache) -> Self {
        Self::gather_from(dataset.features(), bottom, cache)
    }

    /// [`Self::gather`] against an explicit host feature matrix.
    pub fn gather_from(features: &Matrix, bottom: &Block, cache: &FeatureCache) -> Self {
        Self::gather_from_pooled(features, bottom, cache, &mut BatchBuffers::new())
    }

    /// [`Self::gather`] drawing its position lists and miss buffer from a
    /// recycled [`BatchBuffers`] bundle — the engine's steady-state path.
    pub fn gather_pooled(
        dataset: &Dataset,
        bottom: &Block,
        cache: &FeatureCache,
        bufs: &mut BatchBuffers,
    ) -> Self {
        Self::gather_from_pooled(dataset.features(), bottom, cache, bufs)
    }

    /// The single gather implementation: the allocating entry points above
    /// just pass an empty bundle. The mapped row gather reads miss vertex
    /// ids straight out of `miss_pos` — the per-batch widened index vector
    /// the old path collected is gone.
    pub fn gather_from_pooled(
        features: &Matrix,
        bottom: &Block,
        cache: &FeatureCache,
        bufs: &mut BatchBuffers,
    ) -> Self {
        let mut hit_pos = bufs.take_pos();
        let mut miss_pos = bufs.take_pos();
        bottom.partition_src_into(|v| cache.contains(v), &mut hit_pos, &mut miss_pos);
        let mut miss = bufs.take_matrix();
        features.gather_rows_mapped_into(bottom.src(), &miss_pos, &mut miss);
        Self {
            miss,
            miss_pos,
            hit_pos,
        }
    }

    /// Wraps an already-complete host gather: every row is a miss, in
    /// source order — the representation any cache-less path produces.
    pub fn dense(miss: Matrix) -> Self {
        let miss_pos = (0..miss.rows() as u32).collect();
        Self {
            miss,
            miss_pos,
            hit_pos: Vec::new(),
        }
    }

    /// Source vertices served from the GPU-resident cache.
    pub fn num_hits(&self) -> usize {
        self.hit_pos.len()
    }

    /// Source vertices gathered on the host (and transferred).
    pub fn num_misses(&self) -> usize {
        self.miss_pos.len()
    }

    /// Feature bytes the transfer stage must ship: the miss rows only.
    pub fn h2d_feature_bytes(&self) -> u64 {
        (self.miss.rows() * self.miss.cols() * std::mem::size_of::<f32>()) as u64
    }

    /// Device-side assembly after the transfer: interleaves the shipped
    /// miss rows with the cache-resident hit rows back into source order,
    /// bit-identical to a full host gather of `src`.
    ///
    /// `hit_pos` and `miss_pos` come from [`Block::partition_src`], so both
    /// are sorted and together cover every position exactly once; a merge
    /// walk appends each output row straight into reserved capacity, never
    /// zero-filling a byte it is about to overwrite (the same measured win
    /// as the chunked row-gather kernel).
    pub fn assemble(self, src: &[VertexId], cache: &FeatureCache) -> Matrix {
        self.assemble_pooled(src, cache, &mut BatchBuffers::new())
    }

    /// [`Self::assemble`] drawing the output buffer from — and returning
    /// the spent position/miss buffers to — a recycled bundle. Rows are
    /// appended in exactly the same order as the allocating path, so the
    /// result is bit-identical.
    pub fn assemble_pooled(
        self,
        src: &[VertexId],
        cache: &FeatureCache,
        bufs: &mut BatchBuffers,
    ) -> Matrix {
        let GatheredFeatures {
            miss,
            miss_pos,
            hit_pos,
        } = self;
        if hit_pos.is_empty() {
            // All-miss fast path (empty cache): the miss matrix already is
            // the full gather, in source order.
            debug_assert_eq!(miss_pos.len(), src.len());
            bufs.put_pos(miss_pos);
            bufs.put_pos(hit_pos);
            return miss;
        }
        let t0 = neutron_tensor::timing::start();
        let dim = miss.cols();
        let mut data = bufs.take_f32();
        data.reserve(src.len() * dim);
        let mut mi = 0;
        for (p, &vertex) in src.iter().enumerate() {
            if miss_pos.get(mi) == Some(&(p as u32)) {
                data.extend_from_slice(miss.row(mi));
                mi += 1;
            } else {
                data.extend_from_slice(cache.row(vertex));
            }
        }
        let out = Matrix::from_vec(src.len(), dim, data);
        bufs.put_f32(miss.into_vec());
        bufs.put_pos(miss_pos);
        bufs.put_pos(hit_pos);
        neutron_tensor::timing::stop(neutron_tensor::timing::Kernel::Gather, t0);
        out
    }
}

/// A batch between the gather and train stages: sampled blocks plus the
/// split gather. This is what flows through the engine's channels — the
/// dense feature matrix only exists after [`StagedBatch::into_prepared`]
/// runs device-side, so cache hits never touch a channel or the simulated
/// PCIe link.
pub struct StagedBatch {
    /// Position of this batch within its epoch (train order).
    pub index: usize,
    /// Bottom-first sampled block stack.
    pub blocks: Vec<Block>,
    /// The split gather of `blocks[0].src()`.
    pub features: GatheredFeatures,
    /// Spare recycled capacity riding along for assembly; spent buffers are
    /// folded back in so the train stage can return the whole bundle to the
    /// pool. Empty (allocating behaviour) outside the engine.
    pub bufs: BatchBuffers,
}

impl StagedBatch {
    /// Samples-free construction: gathers `blocks[0]`'s features against
    /// `cache` and stages the batch.
    pub fn stage(
        dataset: &Dataset,
        index: usize,
        blocks: Vec<Block>,
        cache: &FeatureCache,
    ) -> Self {
        let features = GatheredFeatures::gather(dataset, &blocks[0], cache);
        Self {
            index,
            blocks,
            features,
            bufs: BatchBuffers::new(),
        }
    }

    /// Bytes this batch ships to the training device: host-gathered (miss)
    /// feature rows plus the sampled block structure (~8 bytes per edge).
    /// Cache hits cost nothing — that is the point.
    pub fn h2d_bytes(&self) -> u64 {
        let structure: u64 = self.blocks.iter().map(|b| b.num_edges() as u64 * 8).sum();
        self.features.h2d_feature_bytes() + structure
    }

    /// Device-side assembly into the dense [`PreparedBatch`] the trainer
    /// consumes. The ride-along buffer bundle supplies the assembly buffer
    /// and absorbs the spent gather buffers, then moves into the prepared
    /// batch's `scrap` so the post-train recycler can return everything.
    pub fn into_prepared(self, cache: &FeatureCache) -> PreparedBatch {
        let StagedBatch {
            index,
            blocks,
            features,
            mut bufs,
        } = self;
        let features = features.assemble_pooled(blocks[0].src(), cache, &mut bufs);
        PreparedBatch {
            index,
            blocks,
            features,
            scrap: bufs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(n: usize, dim: usize) -> Matrix {
        let mut m = Matrix::zeros(n, dim);
        for v in 0..n {
            let row: Vec<f32> = (0..dim).map(|c| (v * 31 + c) as f32).collect();
            m.copy_row_from(v, &row);
        }
        m
    }

    fn block(src: Vec<VertexId>) -> Block {
        let offsets = vec![0u32; src.len() + 1];
        Block::new(src.clone(), src, offsets, Vec::new())
    }

    #[test]
    fn empty_cache_reproduces_the_full_gather_with_full_bytes() {
        let host = features(10, 3);
        let b = block(vec![7, 2, 9]);
        let cache = FeatureCache::empty();
        let gf = GatheredFeatures::gather_from(&host, &b, &cache);
        assert_eq!(gf.num_hits(), 0);
        assert_eq!(gf.num_misses(), 3);
        assert_eq!(gf.h2d_feature_bytes(), 3 * 3 * 4);
        let full = host.gather_rows(&[7, 2, 9]);
        let assembled = gf.assemble(b.src(), &cache);
        assert_eq!(assembled.as_slice(), full.as_slice());
    }

    #[test]
    fn cache_hits_cut_bytes_but_not_the_assembled_matrix() {
        let host = features(10, 3);
        let b = block(vec![7, 2, 9, 4]);
        let cache = FeatureCache::for_vertices(&[2, 4, 5], 10, host.as_slice(), 3);
        let gf = GatheredFeatures::gather_from(&host, &b, &cache);
        assert_eq!(gf.num_hits(), 2); // 2 and 4
        assert_eq!(gf.num_misses(), 2); // 7 and 9
        assert_eq!(gf.h2d_feature_bytes(), 2 * 3 * 4);
        let full = host.gather_rows(&[7, 2, 9, 4]);
        let assembled = gf.assemble(b.src(), &cache);
        assert_eq!(assembled.as_slice(), full.as_slice());
    }

    #[test]
    fn fully_cached_batch_ships_zero_feature_bytes() {
        let host = features(6, 2);
        let b = block(vec![1, 3, 5]);
        let cache = FeatureCache::for_vertices(&[0, 1, 2, 3, 4, 5], 6, host.as_slice(), 2);
        let gf = GatheredFeatures::gather_from(&host, &b, &cache);
        assert_eq!(gf.num_misses(), 0);
        assert_eq!(gf.h2d_feature_bytes(), 0);
        let full = host.gather_rows(&[1, 3, 5]);
        assert_eq!(gf.assemble(b.src(), &cache).as_slice(), full.as_slice());
    }

    #[test]
    fn pooled_gather_and_assemble_match_allocating_path_with_dirty_buffers() {
        let host = features(12, 3);
        let b = block(vec![7, 2, 9, 4, 11]);
        let cache = FeatureCache::for_vertices(&[2, 4], 12, host.as_slice(), 3);

        let mut bufs = BatchBuffers::new();
        // Poison the bundle with stale capacity of the wrong shapes.
        bufs.put_pos(vec![3; 9]);
        bufs.put_pos(vec![1]);
        bufs.put_f32(vec![55.5; 2]);
        bufs.put_f32(vec![0.25; 31]);

        let want = GatheredFeatures::gather_from(&host, &b, &cache);
        let got = GatheredFeatures::gather_from_pooled(&host, &b, &cache, &mut bufs);
        assert_eq!(got.num_hits(), want.num_hits());
        assert_eq!(got.num_misses(), want.num_misses());
        assert_eq!(got.h2d_feature_bytes(), want.h2d_feature_bytes());

        let want_m = want.assemble(b.src(), &cache);
        let got_m = got.assemble_pooled(b.src(), &cache, &mut bufs);
        assert_eq!(got_m.as_slice(), want_m.as_slice());
        // Assembly folded its spent buffers back into the bundle.
        assert_eq!(bufs.pos_bufs.len(), 2);
        assert!(!bufs.f32_bufs.is_empty());
    }

    #[test]
    fn staged_batch_charges_structure_bytes_on_top_of_misses() {
        let host = features(8, 2);
        // One real edge: dst 1 aggregates from src position 1 (vertex 6).
        let b = Block::new(vec![1], vec![1, 6], vec![0, 1], vec![1]);
        let cache = FeatureCache::for_vertices(&[6], 8, host.as_slice(), 2);
        let features = GatheredFeatures::gather_from(&host, &b, &cache);
        let staged = StagedBatch {
            index: 0,
            blocks: vec![b],
            features,
            bufs: BatchBuffers::new(),
        };
        // miss = vertex 1 only (6 is cached): 1 row * 2 dims * 4 B + 8 B edge.
        assert_eq!(staged.h2d_bytes(), 8 + 8);
        let prepared = staged.into_prepared(&cache);
        assert_eq!(
            prepared.features.as_slice(),
            host.gather_rows(&[1, 6]).as_slice()
        );
        assert_eq!(prepared.index, 0);
    }
}
