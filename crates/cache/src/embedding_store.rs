//! Versioned historical-embedding store (§4.1.2 / §4.2.2).
//!
//! Each entry records the model-parameter **version** (batch counter) it was
//! computed under. Reads report their version gap; an optional hard bound
//! turns excessive staleness into an error instead of silent accuracy loss —
//! the property that distinguishes NeutronOrch from GAS in Fig 16.

use neutron_graph::VertexId;
use std::collections::HashMap;
use std::fmt;

/// A read rejected because the entry exceeded the staleness bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaleReadError {
    /// Vertex whose embedding was requested.
    pub vertex: VertexId,
    /// Version the embedding was computed at.
    pub version: u64,
    /// Version at the time of the read.
    pub now: u64,
    /// Configured bound.
    pub bound: u64,
}

impl fmt::Display for StaleReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "embedding of v{} has version gap {} (computed@{}, read@{}), bound {}",
            self.vertex,
            self.now - self.version,
            self.version,
            self.now,
            self.bound
        )
    }
}

impl std::error::Error for StaleReadError {}

/// A deterministic, order-stable image of a store's complete state — the
/// unit a checkpoint serializes. Rows are sorted by vertex id because the
/// backing `HashMap` iterates in arbitrary order; two snapshots of equal
/// stores are therefore structurally equal, and restoring one reproduces
/// every future read (values, version gaps *and* the gap/read counters)
/// bit for bit.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreSnapshot {
    /// Embedding dimension.
    pub dim: usize,
    /// Staleness bound, if any.
    pub bound: Option<u64>,
    /// `(vertex, row, version)` triples, ascending by vertex id.
    pub rows: Vec<(VertexId, Vec<f32>, u64)>,
    /// Largest version gap any successful read had observed.
    pub max_observed_gap: u64,
    /// Successful read count.
    pub reads: u64,
}

/// Versioned per-vertex embedding rows.
#[derive(Clone, Debug)]
pub struct EmbeddingStore {
    dim: usize,
    bound: Option<u64>,
    entries: HashMap<VertexId, (Vec<f32>, u64)>,
    max_observed_gap: u64,
    reads: u64,
}

impl EmbeddingStore {
    /// Store for `dim`-dimensional embeddings. `bound = Some(b)` makes any
    /// read with version gap `> b` an error (NeutronOrch sets `b = 2n−1`);
    /// `None` allows unbounded reuse (GAS-like).
    pub fn new(dim: usize, bound: Option<u64>) -> Self {
        Self {
            dim,
            bound,
            entries: HashMap::new(),
            max_observed_gap: 0,
            reads: 0,
        }
    }

    /// Inserts/refreshes the embedding of `v` computed at `version`.
    pub fn put(&mut self, v: VertexId, row: Vec<f32>, version: u64) {
        assert_eq!(row.len(), self.dim, "dimension mismatch");
        self.entries.insert(v, (row, version));
    }

    /// Reads `v`'s embedding at current version `now`, recording the gap.
    /// Returns `Ok(None)` when no embedding exists.
    pub fn get(&mut self, v: VertexId, now: u64) -> Result<Option<(&[f32], u64)>, StaleReadError> {
        match self.entries.get(&v) {
            None => Ok(None),
            Some((row, version)) => {
                let gap = now.saturating_sub(*version);
                if let Some(bound) = self.bound {
                    if gap > bound {
                        return Err(StaleReadError {
                            vertex: v,
                            version: *version,
                            now,
                            bound,
                        });
                    }
                }
                self.reads += 1;
                self.max_observed_gap = self.max_observed_gap.max(gap);
                Ok(Some((row.as_slice(), gap)))
            }
        }
    }

    /// Publishes a whole refresh batch computed at `version` — the
    /// super-batch flip of the double-buffered refresh: the worker computes
    /// rows against an immutable parameter snapshot off to the side, then
    /// the train stage installs them all at once at the next boundary.
    pub fn put_rows<I>(&mut self, rows: I, version: u64)
    where
        I: IntoIterator<Item = (VertexId, Vec<f32>)>,
    {
        for (v, row) in rows {
            self.put(v, row, version);
        }
    }

    /// Drops every entry older than `cutoff` — NeutronOrch's super-batch
    /// retirement ("historical embeddings from the previous super-batch are
    /// only accessible within the current super-batch").
    pub fn evict_older_than(&mut self, cutoff: u64) {
        self.entries.retain(|_, (_, version)| *version >= cutoff);
    }

    /// Number of stored embeddings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest version gap any successful read observed.
    pub fn max_observed_gap(&self) -> u64 {
        self.max_observed_gap
    }

    /// Number of successful reads (embedding reuses).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bytes held (entries × dim × 4).
    pub fn bytes(&self) -> u64 {
        (self.entries.len() * self.dim * 4) as u64
    }

    /// Captures the store's complete state, sorted by vertex id (the
    /// backing map iterates in arbitrary order, so a checkpoint must not
    /// serialize it directly).
    pub fn snapshot(&self) -> StoreSnapshot {
        let mut rows: Vec<(VertexId, Vec<f32>, u64)> = self
            .entries
            .iter()
            .map(|(&v, (row, version))| (v, row.clone(), *version))
            .collect();
        rows.sort_unstable_by_key(|(v, _, _)| *v);
        StoreSnapshot {
            dim: self.dim,
            bound: self.bound,
            rows,
            max_observed_gap: self.max_observed_gap,
            reads: self.reads,
        }
    }

    /// Rebuilds a store from a snapshot. The counters round-trip too, so a
    /// restored trainer reports the same `max_observed_gap`/`reads` series
    /// the uninterrupted run would.
    pub fn from_snapshot(snap: &StoreSnapshot) -> Self {
        let mut store = Self::new(snap.dim, snap.bound);
        for (v, row, version) in &snap.rows {
            store.put(*v, row.clone(), *version);
        }
        store.max_observed_gap = snap.max_observed_gap;
        store.reads = snap.reads;
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_with_gap() {
        let mut s = EmbeddingStore::new(3, Some(5));
        s.put(7, vec![1.0, 2.0, 3.0], 10);
        let (row, gap) = s.get(7, 12).unwrap().unwrap();
        assert_eq!(row, &[1.0, 2.0, 3.0]);
        assert_eq!(gap, 2);
        assert_eq!(s.max_observed_gap(), 2);
        assert_eq!(s.reads(), 1);
    }

    #[test]
    fn missing_vertex_is_none_not_error() {
        let mut s = EmbeddingStore::new(2, Some(1));
        assert_eq!(s.get(0, 100).unwrap(), None);
    }

    #[test]
    fn bound_violation_is_an_error() {
        let mut s = EmbeddingStore::new(1, Some(3));
        s.put(1, vec![0.5], 0);
        assert!(s.get(1, 3).is_ok());
        let err = s.get(1, 4).unwrap_err();
        assert_eq!(err.bound, 3);
        assert_eq!(err.now - err.version, 4);
        // A failed read must not pollute the observed-gap statistics.
        assert_eq!(s.max_observed_gap(), 3);
    }

    #[test]
    fn unbounded_store_accepts_any_gap() {
        let mut s = EmbeddingStore::new(1, None);
        s.put(1, vec![0.1], 0);
        let (_, gap) = s.get(1, 1_000_000).unwrap().unwrap();
        assert_eq!(gap, 1_000_000);
    }

    #[test]
    fn put_rows_publishes_a_batch_at_one_version() {
        let mut s = EmbeddingStore::new(2, Some(3));
        s.put_rows(vec![(1, vec![1.0, 1.0]), (2, vec![2.0, 2.0])], 5);
        assert_eq!(s.len(), 2);
        let (row, gap) = s.get(2, 6).unwrap().unwrap();
        assert_eq!(row, &[2.0, 2.0]);
        assert_eq!(gap, 1);
    }

    #[test]
    fn eviction_retires_old_versions() {
        let mut s = EmbeddingStore::new(1, None);
        s.put(1, vec![0.0], 5);
        s.put(2, vec![0.0], 9);
        s.evict_older_than(6);
        assert_eq!(s.len(), 1);
        assert!(s.get(1, 10).unwrap().is_none());
        assert!(s.get(2, 10).unwrap().is_some());
    }

    #[test]
    fn bytes_accounting() {
        let mut s = EmbeddingStore::new(4, None);
        s.put(0, vec![0.0; 4], 0);
        s.put(1, vec![0.0; 4], 0);
        assert_eq!(s.bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension() {
        let mut s = EmbeddingStore::new(2, None);
        s.put(0, vec![0.0; 3], 0);
    }

    #[test]
    fn snapshot_is_sorted_and_restores_counters() {
        let mut s = EmbeddingStore::new(2, Some(7));
        s.put(9, vec![9.0, 9.0], 3);
        s.put(1, vec![1.0, 1.0], 5);
        s.put(4, vec![4.0, 4.0], 2);
        let _ = s.get(9, 6); // gap 3, one read
        let snap = s.snapshot();
        assert_eq!(
            snap.rows.iter().map(|(v, _, _)| *v).collect::<Vec<_>>(),
            vec![1, 4, 9]
        );
        let restored = EmbeddingStore::from_snapshot(&snap);
        assert_eq!(restored.max_observed_gap(), 3);
        assert_eq!(restored.reads(), 1);
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.snapshot(), snap, "round-trip is lossless");
    }
}
