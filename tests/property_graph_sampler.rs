//! Property tests: CSR invariants and neighbor-sampler guarantees under
//! randomly generated graphs and batches.

use neutronorch::graph::{Csr, GraphBuilder};
use neutronorch::sample::{Fanout, NeighborSampler};
use proptest::prelude::*;

/// Strategy: a random edge list over `n` vertices.
fn edges(max_v: usize, max_e: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_v).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..max_e))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn built_graphs_always_validate((n, es) in edges(64, 256)) {
        let mut b = GraphBuilder::new(n);
        for (s, d) in &es {
            b.add_edge(*s, *d);
        }
        let g = b.build();
        prop_assert!(g.validate().is_ok());
        // Dedup + self-loop removal can only shrink.
        prop_assert!(g.num_edges() <= es.len());
        // No self loops survive.
        for v in 0..n as u32 {
            prop_assert!(!g.neighbors(v).contains(&v));
        }
    }

    #[test]
    fn reverse_preserves_edge_multiset((n, es) in edges(48, 200)) {
        let mut b = GraphBuilder::new(n);
        for (s, d) in &es {
            b.add_edge(*s, *d);
        }
        let g = b.build();
        let rr = g.reverse().reverse();
        prop_assert_eq!(g.num_edges(), rr.num_edges());
        for v in 0..n as u32 {
            let mut a = g.neighbors(v).to_vec();
            let mut c = rr.neighbors(v).to_vec();
            a.sort_unstable();
            c.sort_unstable();
            prop_assert_eq!(a, c);
        }
    }

    #[test]
    fn sampler_respects_fanout_and_universe(
        (n, es) in edges(48, 400),
        fanout in 1usize..6,
        layers in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut b = GraphBuilder::new(n);
        for (s, d) in &es {
            b.add_edge(*s, *d);
        }
        let g: Csr = b.build();
        let seeds: Vec<u32> = (0..(n as u32).min(5)).collect();
        let sampler = NeighborSampler::new(Fanout::new(vec![fanout; layers]));
        let blocks = sampler.sample_batch(&g, &seeds, seed);
        prop_assert_eq!(blocks.len(), layers);
        // Chaining: each block's dst equals the upper block's src.
        for w in blocks.windows(2) {
            prop_assert_eq!(w[0].dst(), w[1].src());
        }
        prop_assert_eq!(blocks.last().unwrap().dst(), &seeds[..]);
        for block in &blocks {
            prop_assert!(block.validate().is_ok());
            for i in 0..block.num_dst() {
                let v = block.dst()[i];
                prop_assert!(block.sampled_degree(i) <= fanout);
                prop_assert!(block.sampled_degree(i) <= g.degree(v));
                // All sampled neighbors are true neighbors.
                for &li in block.neighbors_local(i) {
                    let u = block.src()[li as usize];
                    prop_assert!(g.neighbors(v).contains(&u));
                }
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed((n, es) in edges(32, 150), seed in any::<u64>()) {
        let mut b = GraphBuilder::new(n);
        for (s, d) in &es {
            b.add_edge(*s, *d);
        }
        let g = b.build();
        let sampler = NeighborSampler::new(Fanout::new(vec![3, 3]));
        let seeds: Vec<u32> = vec![0, (n as u32 - 1).min(7)];
        let a = sampler.sample_batch(&g, &seeds, seed);
        let bb = sampler.sample_batch(&g, &seeds, seed);
        for (x, y) in a.iter().zip(&bb) {
            prop_assert_eq!(x.src(), y.src());
            prop_assert_eq!(x.num_edges(), y.num_edges());
        }
    }
}
