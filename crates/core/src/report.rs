//! Per-epoch simulation reports.

use neutron_hetero::{RunReport, TaskKind};

/// Everything an orchestrator reports about one simulated epoch — the raw
/// material for every table and figure of the evaluation.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// System label ("DGL", "NeutronOrch", …).
    pub system: String,
    /// Simulated wall-clock of the epoch, seconds.
    pub epoch_seconds: f64,
    /// CPU pool busy fraction.
    pub cpu_util: f64,
    /// GPU busy fraction (mean across GPUs).
    pub gpu_util: f64,
    /// Busy seconds of the sample step.
    pub sample_seconds: f64,
    /// Busy seconds of host-side feature collection ("Gather (FC)").
    pub gather_collect_seconds: f64,
    /// Busy seconds of host↔device transfer ("Gather (FT)").
    pub transfer_seconds: f64,
    /// Busy seconds of GPU training.
    pub train_seconds: f64,
    /// Busy seconds of CPU historical-embedding computation.
    pub hot_embed_seconds: f64,
    /// Bytes moved host→device during the epoch.
    pub h2d_bytes: u64,
    /// Peak GPU memory across the epoch (max over GPUs).
    pub gpu_mem_peak: u64,
    /// Batches in the epoch.
    pub num_batches: usize,
}

impl EpochReport {
    /// Assembles a report from an engine run plus memory/transfer tallies.
    pub fn from_run(
        system: impl Into<String>,
        run: &RunReport,
        cpu_util: f64,
        gpu_util: f64,
        h2d_bytes: u64,
        gpu_mem_peak: u64,
        num_batches: usize,
    ) -> Self {
        Self {
            system: system.into(),
            epoch_seconds: run.makespan,
            cpu_util,
            gpu_util,
            sample_seconds: run.busy(TaskKind::Sample),
            gather_collect_seconds: run.busy(TaskKind::GatherCollect),
            transfer_seconds: run.busy(TaskKind::Transfer),
            train_seconds: run.busy(TaskKind::Train),
            hot_embed_seconds: run.busy(TaskKind::HotEmbed),
            h2d_bytes,
            gpu_mem_peak,
            num_batches,
        }
    }

    /// Speedup of `self` over `other` (other / self).
    pub fn speedup_over(&self, other: &EpochReport) -> f64 {
        other.epoch_seconds / self.epoch_seconds
    }

    /// Gather share of the epoch (FC + FT), as reported in Table 2.
    pub fn gather_seconds(&self) -> f64 {
        self.gather_collect_seconds + self.transfer_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_hetero::{Engine, TaskKind};

    #[test]
    fn from_run_extracts_kind_breakdown() {
        let mut e = Engine::new();
        let cpu = e.add_resource("cpu", 1.0);
        let a = e.add_task(cpu, TaskKind::Sample, 1.0, 1.0, &[]);
        let b = e.add_task(cpu, TaskKind::GatherCollect, 2.0, 1.0, &[a]);
        e.add_task(cpu, TaskKind::Transfer, 0.5, 1.0, &[b]);
        let run = e.run();
        let r = EpochReport::from_run("X", &run, 1.0, 0.0, 42, 7, 3);
        assert!((r.sample_seconds - 1.0).abs() < 1e-9);
        assert!((r.gather_seconds() - 2.5).abs() < 1e-9);
        assert!((r.epoch_seconds - 3.5).abs() < 1e-9);
        assert_eq!(r.h2d_bytes, 42);
        assert_eq!(r.gpu_mem_peak, 7);
    }

    #[test]
    fn speedup_is_ratio_of_epochs() {
        let mk = |secs: f64| EpochReport {
            system: "s".into(),
            epoch_seconds: secs,
            cpu_util: 0.0,
            gpu_util: 0.0,
            sample_seconds: 0.0,
            gather_collect_seconds: 0.0,
            transfer_seconds: 0.0,
            train_seconds: 0.0,
            hot_embed_seconds: 0.0,
            h2d_bytes: 0,
            gpu_mem_peak: 0,
            num_batches: 1,
        };
        assert!((mk(2.0).speedup_over(&mk(8.0)) - 4.0).abs() < 1e-9);
    }
}
