//! `xtask bench-kernels` / `xtask bench-diff`: the BENCH_*.json regression
//! gate.
//!
//! `bench-kernels` runs the kernel microbench
//! (`crates/bench/benches/kernels.rs`) with the criterion stub's
//! `CRITERION_JSON` output enabled, prints the chunked-vs-scalar speedup
//! table, and with `--update` rewrites the committed `BENCH_kernels.json`.
//!
//! `bench-diff` is the CI gate. Two halves:
//!
//! - **Kernels**: re-runs the microbench and fails on regressions. The CI
//!   box is a single shared core whose timings swing ~2x between runs, so
//!   the gates are chosen to catch real regressions without flaking:
//!   same-run *ratios* (chunked vs scalar measured seconds apart) get
//!   tight-ish bounds, while cross-run absolute comparisons against the
//!   committed JSON use a generous [`CROSS_RUN_SLOWDOWN`] factor.
//! - **Engine**: validates the internal invariants of `BENCH_engine.json`
//!   (series shapes, deterministic byte accounting, stage-breakdown
//!   consistency) — generalising the inline python sanity check PR 3's CI
//!   carried. Byte series are *not* compared across runs: the cache plan
//!   depends on measured occupancy, so only invariants that hold for every
//!   valid run are checked.

use crate::json::{parse_lines, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The paired kernels `BENCH_kernels.json` tracks, in report order.
const PAIRED_KERNELS: [&str; 5] = [
    "matmul",
    "matmul_at_b",
    "matmul_a_bt",
    "gather",
    "scatter_add",
];

/// At least one paired kernel must beat its scalar reference by this much
/// in the same run (the tentpole's acceptance floor; measured headroom is
/// ~4x on matmul, ~2.6x on matmul_a_bt).
const MIN_BEST_SPEEDUP: f64 = 1.5;

/// No chunked kernel may fall below this fraction of its scalar reference
/// in the same run. Same-run ratios still jitter on the shared box (the
/// two sides run seconds apart), so this is a catastrophic-pessimisation
/// guard, not a tightness claim.
const MIN_ANY_SPEEDUP: f64 = 0.5;

/// Cross-run gate: a chunked kernel (or any non-paired bench) fails if it
/// runs this many times slower than the committed baseline. Covers the
/// observed ~2x machine noise with margin; a real algorithmic regression
/// (e.g. losing autovectorization) typically costs 3-5x.
const CROSS_RUN_SLOWDOWN: f64 = 3.0;

/// PR 4's committed warm-epoch engine mean (`engine_warm_mean_seconds` in
/// the BENCH_engine.json that PR shipped). The pooled hot path must not
/// regress wall-clock past machine noise: the gate is this baseline times
/// [`CROSS_RUN_SLOWDOWN`].
const PR4_ENGINE_WARM_MEAN_SECONDS: f64 = 0.1189;

/// Checkpoint overhead gate: the mean wall-clock of a checkpoint write may
/// cost at most this fraction of the warm-epoch mean. Checkpointing is
/// supposed to be cheap insurance — if serialization ever approaches epoch
/// cost, the format (or the cadence default) has regressed.
const MAX_CHECKPOINT_OVERHEAD_FRACTION: f64 = 0.05;

/// Absolute budget for warm-epoch (epochs 1..) staging allocations —
/// heap allocations attributed to the sample/gather/transfer stages per
/// engine epoch. Measured 29–38/epoch on the pooled engine (capacity
/// growth on recycled buffers while epochs 1–3 still warm up); the budget
/// leaves headroom for scheduling variance without letting a per-batch
/// allocation (32+/epoch per callsite) slip back in.
const WARM_STAGING_ALLOC_BUDGET: f64 = 150.0;

/// The pooled engine must make at least this many times fewer
/// **steady-state** staging allocations (mean over the last half of the
/// warm epochs, once every pooled buffer has grown to the working set)
/// than the allocating sequential baseline measured in the same bench
/// run. Measured 30–90x; 10x is the regression line.
const MIN_STAGING_ALLOC_IMPROVEMENT: f64 = 10.0;

fn workspace_root() -> PathBuf {
    // crates/xtask -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// Runs the kernel microbench, returning `id -> min_ns`.
fn run_microbench() -> Result<BTreeMap<String, u64>, String> {
    let root = workspace_root();
    let json_path = root.join("target").join("criterion-bench.jsonl");
    let _ = std::fs::remove_file(&json_path);
    println!("running kernel microbench (cargo bench -p neutron-bench --bench kernels)...");
    let status = Command::new("cargo")
        .current_dir(&root)
        .args(["bench", "-p", "neutron-bench", "--bench", "kernels"])
        .env("CRITERION_JSON", &json_path)
        .status()
        .map_err(|e| format!("failed to run cargo bench: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench failed with {status}"));
    }
    let text = std::fs::read_to_string(&json_path)
        .map_err(|e| format!("no bench output at {}: {e}", json_path.display()))?;
    let mut out = BTreeMap::new();
    for line in parse_lines(&text)? {
        let id = line
            .get("id")
            .and_then(Value::as_str)
            .ok_or("bench line missing id")?;
        let min = line
            .get("min_ns")
            .and_then(Value::as_u64)
            .ok_or("bench line missing min_ns")?;
        out.insert(id.to_string(), min);
    }
    Ok(out)
}

struct Pair {
    kernel: &'static str,
    scalar_ns: u64,
    chunked_ns: u64,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.chunked_ns.max(1) as f64
    }
}

fn collect_pairs(results: &BTreeMap<String, u64>) -> Result<Vec<Pair>, String> {
    PAIRED_KERNELS
        .iter()
        .map(|&kernel| {
            let get = |variant: &str| {
                let id = format!("kern/{kernel}/{variant}");
                results
                    .get(&id)
                    .copied()
                    .ok_or(format!("microbench produced no '{id}' result"))
            };
            Ok(Pair {
                kernel,
                scalar_ns: get("scalar")?,
                chunked_ns: get("chunked")?,
            })
        })
        .collect()
}

fn print_pairs(pairs: &[Pair]) {
    println!("\nkernel          scalar(ref)      chunked      speedup");
    for p in pairs {
        println!(
            "{:<14} {:>10.1}us {:>10.1}us {:>9.2}x",
            p.kernel,
            p.scalar_ns as f64 / 1e3,
            p.chunked_ns as f64 / 1e3,
            p.speedup()
        );
    }
}

/// `xtask bench-kernels [--update]`.
pub fn bench_kernels(update: bool) -> Result<(), String> {
    let results = run_microbench()?;
    let pairs = collect_pairs(&results)?;
    print_pairs(&pairs);
    if !update {
        println!("\n(read-only; pass --update to rewrite BENCH_kernels.json)");
        return Ok(());
    }
    let mut kernels = String::new();
    for (i, p) in pairs.iter().enumerate() {
        let sep = if i + 1 == pairs.len() { "" } else { "," };
        kernels.push_str(&format!(
            "    \"{}\": {{\"scalar_ns\": {}, \"chunked_ns\": {}, \"speedup\": {:.2}}}{sep}\n",
            p.kernel,
            p.scalar_ns,
            p.chunked_ns,
            p.speedup()
        ));
    }
    let mut other = String::new();
    let others: Vec<(&String, &u64)> = results
        .iter()
        .filter(|(id, _)| !id.starts_with("kern/"))
        .collect();
    for (i, (id, ns)) in others.iter().enumerate() {
        let sep = if i + 1 == others.len() { "" } else { "," };
        other.push_str(&format!("    \"{id}\": {ns}{sep}\n"));
    }
    let json = format!(
        "{{\n  \"note\": \"min-of-N ns per iteration on the CI container (one shared core; cross-run noise ~2x — xtask bench-diff gates same-run ratios tightly, cross-run absolutes at {CROSS_RUN_SLOWDOWN}x). Refresh with: cargo xtask bench-kernels --update\",\n  \"kernels\": {{\n{kernels}  }},\n  \"other_ns\": {{\n{other}  }}\n}}\n"
    );
    let path = workspace_root().join("BENCH_kernels.json");
    std::fs::write(&path, json).map_err(|e| e.to_string())?;
    println!("\nwrote {}", path.display());
    Ok(())
}

/// The kernel half of `xtask bench-diff`.
fn diff_kernels() -> Result<(), String> {
    let results = run_microbench()?;
    let pairs = collect_pairs(&results)?;
    print_pairs(&pairs);
    let mut failures: Vec<String> = Vec::new();

    let best = pairs
        .iter()
        .map(Pair::speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    if best < MIN_BEST_SPEEDUP {
        failures.push(format!(
            "best chunked-vs-scalar speedup {best:.2}x fell below the {MIN_BEST_SPEEDUP}x floor"
        ));
    }
    for p in &pairs {
        if p.speedup() < MIN_ANY_SPEEDUP {
            failures.push(format!(
                "kernel '{}' runs {:.2}x its scalar reference (floor {MIN_ANY_SPEEDUP}x of scalar)",
                p.kernel,
                1.0 / p.speedup()
            ));
        }
    }

    // Cross-run comparison against the committed baseline, when present.
    let baseline_path = workspace_root().join("BENCH_kernels.json");
    match std::fs::read_to_string(&baseline_path) {
        Err(_) => println!(
            "\nno committed BENCH_kernels.json — skipping cross-run comparison \
             (create it with: cargo xtask bench-kernels --update)"
        ),
        Ok(text) => {
            let baseline = Value::parse(&text)?;
            for p in &pairs {
                let committed = baseline
                    .get("kernels")
                    .and_then(|k| k.get(p.kernel))
                    .and_then(|k| k.get("chunked_ns"))
                    .and_then(Value::as_u64);
                if let Some(committed) = committed {
                    let ratio = p.chunked_ns as f64 / committed.max(1) as f64;
                    if ratio > CROSS_RUN_SLOWDOWN {
                        failures.push(format!(
                            "kernel '{}' regressed {ratio:.2}x vs committed baseline \
                             ({} ns -> {} ns; gate {CROSS_RUN_SLOWDOWN}x)",
                            p.kernel, committed, p.chunked_ns
                        ));
                    }
                }
            }
            if let Some(Value::Obj(other)) = baseline.get("other_ns") {
                for (id, committed) in other {
                    let (Some(committed), Some(&fresh)) = (committed.as_u64(), results.get(id))
                    else {
                        continue;
                    };
                    let ratio = fresh as f64 / committed.max(1) as f64;
                    if ratio > CROSS_RUN_SLOWDOWN {
                        failures.push(format!(
                            "bench '{id}' regressed {ratio:.2}x vs committed baseline \
                             ({committed} ns -> {fresh} ns; gate {CROSS_RUN_SLOWDOWN}x)"
                        ));
                    }
                }
            }
        }
    }

    if failures.is_empty() {
        println!("\nkernel gate: OK (best speedup {best:.2}x)");
        Ok(())
    } else {
        Err(format!("kernel gate FAILED:\n  {}", failures.join("\n  ")))
    }
}

/// The engine half of `xtask bench-diff`: internal invariants of
/// `BENCH_engine.json`.
fn diff_engine() -> Result<(), String> {
    let path = workspace_root().join("BENCH_engine.json");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Value::parse(&text)?;
    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if !ok {
            failures.push(what.to_string());
        }
    };

    let epochs = doc
        .get("epochs")
        .and_then(Value::as_u64)
        .ok_or("BENCH_engine.json missing 'epochs'")? as usize;
    let series = |key: &str| -> Result<Vec<f64>, String> {
        doc.get(key)
            .and_then(Value::as_f64_series)
            .ok_or(format!("missing or non-numeric series '{key}'"))
    };

    // Series shapes + sign.
    for key in [
        "sequential_epoch_seconds",
        "respawn_epoch_seconds",
        "engine_epoch_seconds",
        "adaptive_cpu_fraction",
        "cache_hits_per_epoch",
        "cache_misses_per_epoch",
        "h2d_bytes_per_epoch",
        "h2d_bytes_per_epoch_nocache",
        "train_occupancy",
        "losses",
    ] {
        let s = series(key)?;
        check(
            s.len() == epochs,
            &format!("series '{key}' length != epochs"),
        );
        check(
            s.iter().all(|v| v.is_finite() && *v >= 0.0),
            &format!("series '{key}' has negative or non-finite entries"),
        );
    }

    // Deterministic byte accounting (the PR 3 python step, ported).
    let cached = series("h2d_bytes_per_epoch")?;
    let nocache = series("h2d_bytes_per_epoch_nocache")?;
    let hits = series("cache_hits_per_epoch")?;
    check(
        nocache.iter().all(|&v| v > 0.0),
        "cache-less H2D volume must be nonzero every epoch",
    );
    check(
        cached[0] == nocache[0],
        "epoch 0 runs before the first plan: cached and cache-less volumes must match",
    );
    check(
        cached.iter().zip(&nocache).all(|(c, n)| c <= n),
        "the cache may only remove transferred bytes",
    );
    check(
        cached.iter().sum::<f64>() < nocache.iter().sum::<f64>(),
        "a nonzero cache budget must reduce total transferred bytes",
    );
    check(hits.iter().sum::<f64>() > 0.0, "no cache hits recorded");

    // Stage breakdown consistency (per-stage timing added with the xtask
    // harness): every stage series spans the epochs, and the train stage's
    // busy + starved time stays within wall-clock (small tolerance for the
    // 4-decimal rounding the JSON writer applies).
    let stages = doc
        .get("stage_seconds")
        .ok_or("missing 'stage_seconds' breakdown")?;
    for key in [
        "sample",
        "gather",
        "transfer",
        "train",
        "train_wait",
        "refresh",
    ] {
        let s = stages
            .get(key)
            .and_then(Value::as_f64_series)
            .ok_or(format!("stage_seconds missing '{key}'"))?;
        check(
            s.len() == epochs,
            &format!("stage_seconds['{key}'] length != epochs"),
        );
        check(
            s.iter().all(|v| v.is_finite() && *v >= 0.0),
            &format!("stage_seconds['{key}'] has negative entries"),
        );
    }
    let wall = series("engine_epoch_seconds")?;
    let train = stages.get("train").and_then(Value::as_f64_series).unwrap();
    let wait = stages
        .get("train_wait")
        .and_then(Value::as_f64_series)
        .unwrap();
    for e in 0..epochs {
        check(
            train[e] + wait[e] <= wall[e] * 1.02 + 1e-3,
            &format!("epoch {e}: train busy+starved exceeds epoch wall-clock"),
        );
    }

    // Allocation telemetry (the pooled-hot-path gate). The bench must have
    // run under a counting allocator — all-zero series from a build without
    // one would otherwise pass as "allocation-free" vacuously.
    check(
        doc.get("alloc_counting") == Some(&Value::Bool(true)),
        "'alloc_counting' is not true — regenerate BENCH_engine.json with \
         `cargo run --release --example engine_multi_epoch --features count-allocs`",
    );
    for obj_key in ["allocs_per_epoch", "alloc_bytes_per_epoch"] {
        let obj = doc
            .get(obj_key)
            .ok_or(format!("missing '{obj_key}' breakdown"))?;
        for stage in ["other", "sample", "gather", "transfer", "train", "refresh"] {
            let s = obj
                .get(stage)
                .and_then(Value::as_f64_series)
                .ok_or(format!("{obj_key} missing stage series '{stage}'"))?;
            check(
                s.len() == epochs,
                &format!("{obj_key}['{stage}'] length != epochs"),
            );
            check(
                s.iter().all(|v| v.is_finite() && *v >= 0.0),
                &format!("{obj_key}['{stage}'] has negative or non-finite entries"),
            );
        }
    }
    let warm_mean = |s: &[f64]| s[1..].iter().sum::<f64>() / (s.len() - 1).max(1) as f64;
    // Steady state: the last half of the warm epochs, after every pooled
    // buffer has grown to the working-set capacity. The warmup epochs
    // (pool filling, capacity growth) are judged only by the absolute
    // budget above; the improvement ratio is a steady-state claim.
    let steady_mean = |s: &[f64]| {
        let tail = &s[s.len() - (s.len() / 2).max(1)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    let seq_staging = series("sequential_staging_allocs_per_epoch")?;
    let eng_staging = series("engine_staging_allocs_per_epoch")?;
    check(
        seq_staging.len() == epochs && eng_staging.len() == epochs,
        "staging-alloc series must span the epochs",
    );
    let seq_warm = warm_mean(&seq_staging);
    let eng_warm = warm_mean(&eng_staging);
    let seq_steady = steady_mean(&seq_staging);
    let eng_steady = steady_mean(&eng_staging);
    check(
        seq_warm > 0.0,
        "sequential baseline recorded zero staging allocations — counting was off",
    );
    check(
        eng_warm <= WARM_STAGING_ALLOC_BUDGET,
        &format!(
            "warm-epoch staging allocations {eng_warm:.1}/epoch exceed the \
             {WARM_STAGING_ALLOC_BUDGET} budget — a hot-path allocation crept back in"
        ),
    );
    check(
        seq_steady >= MIN_STAGING_ALLOC_IMPROVEMENT * eng_steady.max(1.0),
        &format!(
            "pooled engine steady-state staging allocations ({eng_steady:.1}/epoch) are not \
             {MIN_STAGING_ALLOC_IMPROVEMENT}x below the allocating baseline ({seq_steady:.1}/epoch)"
        ),
    );
    // Warm-epoch wall-clock vs the committed PR 4 baseline (generous
    // cross-run factor — same rationale as the kernel gate).
    let warm_secs = doc
        .get("engine_warm_mean_seconds")
        .and_then(Value::as_f64)
        .ok_or("missing 'engine_warm_mean_seconds'")?;
    check(
        warm_secs <= PR4_ENGINE_WARM_MEAN_SECONDS * CROSS_RUN_SLOWDOWN,
        &format!(
            "engine warm-epoch mean {warm_secs:.4}s regressed past \
             {PR4_ENGINE_WARM_MEAN_SECONDS}s x {CROSS_RUN_SLOWDOWN} (PR 4 baseline)"
        ),
    );

    // Checkpoint telemetry: the bench runs the engine session with
    // checkpointing on, so the series must show at least one write, and
    // the mean write must stay under the overhead ceiling relative to the
    // warm-epoch wall-clock mean.
    let ck_bytes = series("checkpoint_bytes_per_epoch")?;
    let ck_secs = series("checkpoint_seconds_per_epoch")?;
    check(
        ck_bytes.len() == epochs && ck_secs.len() == epochs,
        "checkpoint series must span the epochs",
    );
    check(
        ck_bytes.iter().sum::<f64>() > 0.0,
        "no checkpoint was written during the bench — checkpointing was off",
    );
    check(
        ck_bytes
            .iter()
            .zip(&ck_secs)
            .all(|(&b, &s)| (b > 0.0) == (s > 0.0)),
        "checkpoint bytes and seconds must be nonzero on exactly the same epochs",
    );
    let writes: Vec<f64> = ck_secs.iter().copied().filter(|&s| s > 0.0).collect();
    let ck_mean = writes.iter().sum::<f64>() / writes.len().max(1) as f64;
    check(
        ck_mean <= MAX_CHECKPOINT_OVERHEAD_FRACTION * warm_secs,
        &format!(
            "mean checkpoint write {ck_mean:.4}s exceeds {:.0}% of the warm-epoch \
             mean {warm_secs:.4}s",
            100.0 * MAX_CHECKPOINT_OVERHEAD_FRACTION
        ),
    );

    // Replicated data-parallel section: R=1 identity (asserted in-process
    // by the example; the recorded flag proves the assert ran), the ring
    // all-reduce byte law recomputed from steps x model size, and the
    // locality ablation (partition-aware sampling must pull fewer remote
    // feature bytes than the locality-blind run of the same trajectory).
    let replicas = doc
        .get("replicas")
        .and_then(Value::as_u64)
        .ok_or("missing 'replicas'")?;
    check(
        replicas >= 2,
        "'replicas' must be >= 2 for the scaling section",
    );
    let model_bytes = doc
        .get("model_bytes")
        .and_then(Value::as_f64)
        .ok_or("missing 'model_bytes'")?;
    check(model_bytes > 0.0, "'model_bytes' must be positive");
    check(
        doc.get("replicated_r1_matches_sequential") == Some(&Value::Bool(true)),
        "'replicated_r1_matches_sequential' is not true — the R=1 \
         bit-identity assert did not run",
    );
    for key in [
        "replica_steps_per_epoch",
        "allreduce_bytes_per_epoch",
        "remote_feature_bytes_per_epoch",
        "remote_feature_bytes_per_epoch_blind",
        "interconnect_seconds_per_epoch",
        "replicated_staging_allocs_per_epoch",
    ] {
        let s = series(key)?;
        check(
            s.len() == epochs,
            &format!("series '{key}' length != epochs"),
        );
        check(
            s.iter().all(|v| v.is_finite() && *v >= 0.0),
            &format!("series '{key}' has negative or non-finite entries"),
        );
    }
    let steps = series("replica_steps_per_epoch")?;
    let allreduce = series("allreduce_bytes_per_epoch")?;
    let remote = series("remote_feature_bytes_per_epoch")?;
    let remote_blind = series("remote_feature_bytes_per_epoch_blind")?;
    let interconnect = series("interconnect_seconds_per_epoch")?;
    check(
        steps.iter().all(|&s| s > 0.0),
        "every replicated epoch must take at least one step",
    );
    for e in 0..epochs {
        let want = steps[e] * 2.0 * (replicas - 1) as f64 * model_bytes;
        check(
            (allreduce[e] - want).abs() < 0.5,
            &format!(
                "epoch {e}: allreduce_bytes {} != steps x 2(R-1) x model_bytes = {want}",
                allreduce[e]
            ),
        );
    }
    check(
        interconnect.iter().all(|&v| v > 0.0),
        "interconnect pricing must be positive while all-reduce traffic flows",
    );
    check(
        remote_blind.iter().sum::<f64>() > 0.0,
        "the locality-blind run pulled no remote features — partitioning is broken",
    );
    check(
        remote.iter().sum::<f64>() < remote_blind.iter().sum::<f64>(),
        "locality-aware sampling did not reduce remote feature bytes vs the blind ablation",
    );
    let per_rep = doc
        .get("replica_epoch_seconds")
        .ok_or("missing 'replica_epoch_seconds' breakdown")?;
    for r in 0..replicas {
        let key = format!("replica{r}");
        let s = per_rep
            .get(&key)
            .and_then(Value::as_f64_series)
            .ok_or(format!("replica_epoch_seconds missing '{key}'"))?;
        check(
            s.len() == epochs,
            &format!("replica_epoch_seconds['{key}'] length != epochs"),
        );
        check(
            s.iter().all(|v| v.is_finite() && *v >= 0.0),
            &format!("replica_epoch_seconds['{key}'] has negative entries"),
        );
    }
    // The replicated engine reuses the pooled staging path: its warm-epoch
    // staging allocations get R times the single-engine budget (R pools
    // warm up independently; the per-replica budget is gated exactly in
    // tests/alloc_budget.rs).
    let repl_staging = series("replicated_staging_allocs_per_epoch")?;
    let repl_warm = warm_mean(&repl_staging);
    check(
        repl_warm <= replicas as f64 * WARM_STAGING_ALLOC_BUDGET,
        &format!(
            "replicated warm-epoch staging allocations {repl_warm:.1}/epoch exceed \
             {replicas} x {WARM_STAGING_ALLOC_BUDGET}"
        ),
    );

    // Kernel totals from the timing hooks: present and plausible (nonzero,
    // not larger than total busy time across all workers could explain).
    let kernels = doc
        .get("kernel_seconds")
        .ok_or("missing 'kernel_seconds' (tensor timing hooks)")?;
    if let Value::Obj(map) = kernels {
        let sum: f64 = map.values().filter_map(Value::as_f64).sum();
        check(sum > 0.0, "kernel_seconds sums to zero — hooks were off");
        check(
            map.values().filter_map(Value::as_f64).all(|v| v >= 0.0),
            "kernel_seconds has negative entries",
        );
    } else {
        failures.push("'kernel_seconds' is not an object".into());
    }

    if failures.is_empty() {
        println!(
            "engine gate: OK ({} epochs, {:.1}% H2D saved by the cache, staging \
             allocs warm {:.1}/epoch, steady {:.1}/epoch vs {:.1} sequential; \
             R={replicas} replicas, {:.1}% remote bytes saved by locality)",
            epochs,
            100.0 * (1.0 - cached.iter().sum::<f64>() / nocache.iter().sum::<f64>()),
            eng_warm,
            eng_steady,
            seq_warm,
            100.0 * (1.0 - remote.iter().sum::<f64>() / remote_blind.iter().sum::<f64>()),
        );
        Ok(())
    } else {
        Err(format!("engine gate FAILED:\n  {}", failures.join("\n  ")))
    }
}

/// `xtask bench-diff [--kernels-only | --engine-only]`.
pub fn bench_diff(kernels: bool, engine: bool) -> Result<(), String> {
    let mut errors: Vec<String> = Vec::new();
    if engine {
        if let Err(e) = diff_engine() {
            errors.push(e);
        }
    }
    if kernels {
        if let Err(e) = diff_kernels() {
            errors.push(e);
        }
    }
    if errors.is_empty() {
        println!("\nbench-diff: all gates passed");
        Ok(())
    } else {
        Err(errors.join("\n"))
    }
}
