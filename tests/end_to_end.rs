//! End-to-end integration tests spanning all crates: dataset synthesis →
//! profiling → orchestration simulation → numeric training.

use neutronorch::core::baselines::{Case1Dgl, Case2DglUva, Case3PaGraph, Case4GnnLab, GasLike};
use neutronorch::core::profile::{WorkloadConfig, WorkloadProfile};
use neutronorch::core::trainer::{ConvergenceTrainer, ReusePolicy, TrainerConfig};
use neutronorch::core::{NeutronOrch, Orchestrator};
use neutronorch::graph::DatasetSpec;
use neutronorch::hetero::HardwareSpec;
use neutronorch::nn::LayerKind;

fn small_profile(kind: LayerKind) -> WorkloadProfile {
    let mut spec = DatasetSpec::reddit_scaled();
    spec.vertices = 3_000;
    spec.edges = 240_000;
    let mut cfg = WorkloadConfig::paper_default(kind);
    cfg.batch_size = 256;
    cfg.profiled_batches = 3;
    WorkloadProfile::build(&spec, &cfg)
}

#[test]
fn every_orchestrator_simulates_a_full_epoch() {
    let profile = small_profile(LayerKind::Gcn);
    let hw = HardwareSpec::v100_server(1.0);
    let systems: Vec<Box<dyn Orchestrator>> = vec![
        Box::new(Case1Dgl { pipelined: true }),
        Box::new(Case1Dgl { pipelined: false }),
        Box::new(Case2DglUva { pipelined: true }),
        Box::new(Case3PaGraph),
        Box::new(Case4GnnLab),
        Box::new(GasLike),
        Box::new(NeutronOrch::new()),
    ];
    for sys in systems {
        let r = sys.simulate_epoch(&profile, &hw).unwrap_or_else(|e| {
            panic!("{} OOMed on a tiny replica: {e}", sys.name());
        });
        assert!(
            r.epoch_seconds.is_finite() && r.epoch_seconds > 0.0,
            "{}",
            r.system
        );
        assert!(
            (0.0..=1.0).contains(&r.cpu_util),
            "{}: cpu {}",
            r.system,
            r.cpu_util
        );
        assert!(
            (0.0..=1.0).contains(&r.gpu_util),
            "{}: gpu {}",
            r.system,
            r.gpu_util
        );
        assert!(r.gpu_mem_peak > 0);
        assert_eq!(r.num_batches, profile.num_batches);
        // Busy-time breakdown must not exceed what the devices could do.
        assert!(r.train_seconds <= r.epoch_seconds + 1e-9, "{}", r.system);
    }
}

#[test]
fn neutronorch_simulation_beats_dgl_for_all_three_models() {
    let hw = HardwareSpec::v100_server(1.0);
    for kind in LayerKind::ALL {
        let profile = small_profile(kind);
        let ours = NeutronOrch::new().simulate_epoch(&profile, &hw).unwrap();
        let dgl = Case1Dgl { pipelined: true }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        assert!(
            ours.epoch_seconds < dgl.epoch_seconds,
            "{kind:?}: {} !< {}",
            ours.epoch_seconds,
            dgl.epoch_seconds
        );
    }
}

#[test]
fn numeric_training_converges_and_respects_the_bound_for_all_models() {
    for kind in [LayerKind::Gcn, LayerKind::Sage] {
        let ds = DatasetSpec::tiny().build_full();
        let mut cfg = TrainerConfig::convergence_default(
            kind,
            ReusePolicy::HotnessAware {
                hot_ratio: 0.25,
                super_batch: 3,
            },
        );
        cfg.batch_size = 64;
        let mut trainer = ConvergenceTrainer::new(ds, cfg);
        let mut last = None;
        for e in 0..8 {
            let obs = trainer.train_epoch(e);
            assert!(obs.max_staleness < 6, "{kind:?}: 2n bound violated");
            last = Some(obs);
        }
        let last = last.unwrap();
        assert!(last.train_loss.is_finite());
        assert!(
            last.test_accuracy > 0.4,
            "{kind:?}: accuracy {}",
            last.test_accuracy
        );
    }
}

#[test]
fn gat_training_is_stable_with_reuse() {
    let ds = DatasetSpec::tiny().build_full();
    let mut cfg = TrainerConfig::convergence_default(
        LayerKind::Gat,
        ReusePolicy::HotnessAware {
            hot_ratio: 0.2,
            super_batch: 2,
        },
    );
    cfg.batch_size = 64;
    cfg.lr = 0.1;
    let mut trainer = ConvergenceTrainer::new(ds, cfg);
    for e in 0..4 {
        let obs = trainer.train_epoch(e);
        assert!(obs.train_loss.is_finite(), "GAT diverged at epoch {e}");
    }
}

#[test]
fn oom_is_an_error_value_never_a_panic() {
    // A replica whose paper-scale batch cannot fit a 16 GB device.
    let mut spec = DatasetSpec::wikipedia_scaled();
    spec.vertices = 3_000;
    spec.edges = 96_000;
    let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
    cfg.layers = 5;
    cfg.batch_size = 2048;
    cfg.profiled_batches = 2;
    let profile = WorkloadProfile::build(&spec, &cfg);
    let hw = HardwareSpec::v100_server(1.0);
    let result = Case1Dgl { pipelined: true }.simulate_epoch(&profile, &hw);
    let err = result.expect_err("5-layer Wikipedia at bs2048 must OOM on DGL");
    assert!(err.to_string().contains("OOM"));
}

#[test]
fn hybrid_and_pipeline_flags_change_behaviour_not_correctness() {
    use neutronorch::core::neutronorch::NeutronOrchConfig;
    let profile = small_profile(LayerKind::Gcn);
    let hw = HardwareSpec::v100_server(1.0);
    for (_, cfg) in NeutronOrchConfig::ablation_ladder() {
        let r = NeutronOrch::with_config(cfg)
            .simulate_epoch(&profile, &hw)
            .unwrap();
        assert!(r.epoch_seconds > 0.0);
    }
}
