//! Fig 7 — per-layer workload (|V|, dims) and transfer volume: all layers
//! on GPU vs the layer-based split (Reddit, 2-layer GCN, bs=10000,
//! fanout 4).

use crate::util::{fmt_gb, render_table};
use crate::Setup;
use neutron_core::orchestrator::Lens;
use neutron_core::profile::{WorkloadConfig, WorkloadProfile};
use neutron_nn::LayerKind;

/// The Fig 7 comparison.
#[derive(Clone, Debug)]
pub struct Fig7Data {
    /// `(layer name, |V| of the layer's inputs, dimension)` bottom-up.
    pub layers: Vec<(String, usize, usize)>,
    /// Paper-scale bytes moved when all layers train on the GPU (raw
    /// bottom-layer features).
    pub transfer_all_gpu: u64,
    /// Paper-scale bytes moved under the layer-based split (embeddings +
    /// backward data).
    pub transfer_layer_based: u64,
}

/// Computes the Fig 7 quantities.
pub fn data(setup: Setup) -> Fig7Data {
    let spec = setup.dataset("Reddit");
    let bs = match setup {
        Setup::Paper => 10_000,
        Setup::Smoke => 512,
    };
    let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
    cfg.layers = 2;
    cfg.batch_size = bs;
    cfg.profiled_batches = setup.profiled_batches();
    cfg.fanout_override = Some(vec![4, 4]);
    let profile = WorkloadProfile::build(&spec, &cfg);
    let lens = Lens::new(&profile);
    // Per-layer sizes at paper scale: the replica saturates under 2-hop
    // sampling (bottom ≈ middle ≈ whole replica), which would hide the 3x
    // bottom/middle ratio the paper measures on the full 233k-vertex graph.
    let sizes = lens.paper_layer_sizes(bs); // bottom-first (dst, src)
    let (bottom_dst, bottom_src) = sizes[0];
    let (top_dst, top_src) = sizes[1];
    let layers = vec![
        (
            "bottom (features)".to_string(),
            bottom_src as usize,
            spec.feature_dim,
        ),
        (
            "middle (embeddings)".to_string(),
            top_src as usize,
            spec.hidden_dim,
        ),
        ("output".to_string(), top_dst as usize, spec.num_classes),
    ];
    let feat = spec.feature_row_bytes();
    let hid = spec.hidden_row_bytes();
    // All layers on GPU: every bottom-layer source ships raw features.
    let all_gpu = (bottom_src * feat as f64) as u64;
    // Layer-based: the middle layer's inputs arrive as computed embeddings,
    // plus the backward-pass data (aggregated neighbor representation +
    // fresh embedding) for each bottom destination (§4.1.1).
    let layer_based = (bottom_dst * (feat + hid) as f64) as u64;
    Fig7Data {
        layers,
        transfer_all_gpu: all_gpu,
        transfer_layer_based: layer_based,
    }
}

/// Renders Fig 7.
pub fn run(setup: Setup) -> String {
    let d = data(setup);
    let mut rows: Vec<Vec<String>> = d
        .layers
        .iter()
        .map(|(name, v, dim)| vec![name.clone(), v.to_string(), dim.to_string()])
        .collect();
    rows.push(vec![
        "transfer, all-on-GPU".into(),
        fmt_gb(d.transfer_all_gpu),
        "GB".into(),
    ]);
    rows.push(vec![
        "transfer, layer-based".into(),
        fmt_gb(d.transfer_layer_based),
        "GB".into(),
    ]);
    render_table(
        "Fig 7: per-layer workload & transfer volume (Reddit, 2-layer GCN, fanout 4)",
        &["layer / quantity", "|V| or GB", "dim"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_layer_has_most_vertices() {
        // Paper: 86175 vs 28706 — bottom ≈ 3× middle at fanout 4.
        let d = data(Setup::Smoke);
        let bottom = d.layers[0].1;
        let middle = d.layers[1].1;
        assert!(bottom > middle, "bottom {bottom} vs middle {middle}");
    }

    #[test]
    fn layer_based_split_transfers_less() {
        // The headline of Fig 7: embeddings (+backward data) beat raw
        // neighbor features.
        let d = data(Setup::Smoke);
        assert!(
            d.transfer_layer_based < d.transfer_all_gpu,
            "{} !< {}",
            d.transfer_layer_based,
            d.transfer_all_gpu
        );
    }
}
