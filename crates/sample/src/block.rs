//! Message-flow-graph blocks (bipartite per-layer subgraphs).

use neutron_graph::VertexId;

/// A bipartite sampled subgraph for one GNN layer.
///
/// Destination vertices (`dst`) are the vertices whose embeddings the layer
/// produces; source vertices (`src`) provide the inputs. Following the DGL
/// convention, `src[0..dst.len()] == dst`, so a destination's own input is
/// always available at the same local index — the self-contribution of
/// Equation (1)'s `N_in(v) ∪ {v}`.
#[derive(Clone, Debug)]
pub struct Block {
    dst: Vec<VertexId>,
    src: Vec<VertexId>,
    /// Per-dst offsets into `indices` (length `dst.len() + 1`). Lists
    /// sampled in-neighbors only; the self edge is implicit.
    offsets: Vec<u32>,
    /// Local src indices of each dst's sampled neighbors.
    indices: Vec<u32>,
}

impl Block {
    /// Assembles a block, validating the src-prefix convention.
    pub fn new(
        dst: Vec<VertexId>,
        src: Vec<VertexId>,
        offsets: Vec<u32>,
        indices: Vec<u32>,
    ) -> Self {
        assert_eq!(offsets.len(), dst.len() + 1);
        assert_eq!(*offsets.last().unwrap_or(&0) as usize, indices.len());
        assert!(src.len() >= dst.len(), "src must contain dst as prefix");
        debug_assert!(
            dst.iter().zip(&src).all(|(a, b)| a == b),
            "src prefix must equal dst"
        );
        debug_assert!(indices.iter().all(|&i| (i as usize) < src.len()));
        Self {
            dst,
            src,
            offsets,
            indices,
        }
    }

    /// Destination (output) vertices, in order.
    #[inline]
    pub fn dst(&self) -> &[VertexId] {
        &self.dst
    }

    /// Source (input) vertices; the first `num_dst` entries equal `dst`.
    #[inline]
    pub fn src(&self) -> &[VertexId] {
        &self.src
    }

    /// Number of destination vertices.
    #[inline]
    pub fn num_dst(&self) -> usize {
        self.dst.len()
    }

    /// Number of source vertices.
    #[inline]
    pub fn num_src(&self) -> usize {
        self.src.len()
    }

    /// Number of sampled (non-self) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Local src indices of dst `i`'s sampled neighbors.
    #[inline]
    pub fn neighbors_local(&self, i: usize) -> &[u32] {
        &self.indices[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// In-degree (sampled) of dst `i`, excluding the implicit self edge.
    #[inline]
    pub fn sampled_degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Partitions the source list by `pred` into `(matching, rest)` local
    /// position lists. `src` is already deduplicated at sampling time (one
    /// local index per distinct vertex), so a cache probe can partition it
    /// directly — no second dedup pass — and the two lists together cover
    /// every source position exactly once, in ascending order.
    pub fn partition_src<F: FnMut(VertexId) -> bool>(&self, pred: F) -> (Vec<u32>, Vec<u32>) {
        let mut matching = Vec::new();
        let mut rest = Vec::new();
        self.partition_src_into(pred, &mut matching, &mut rest);
        (matching, rest)
    }

    /// [`Self::partition_src`] into caller-owned (recycled) position
    /// buffers; both are cleared first, so the results are identical to the
    /// allocating variant.
    pub fn partition_src_into<F: FnMut(VertexId) -> bool>(
        &self,
        mut pred: F,
        matching: &mut Vec<u32>,
        rest: &mut Vec<u32>,
    ) {
        matching.clear();
        rest.clear();
        rest.reserve(self.src.len());
        for (i, &v) in self.src.iter().enumerate() {
            if pred(v) {
                matching.push(i as u32);
            } else {
                rest.push(i as u32);
            }
        }
    }

    /// Dismantles the block into its spent buffers so a [`BlockParts`] pool
    /// can hand the capacity back to the sampler.
    pub fn into_parts(self) -> BlockParts {
        BlockParts {
            dst: self.dst,
            src: self.src,
            offsets: self.offsets,
            indices: self.indices,
        }
    }

    /// Checks internal invariants; used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.dst.len() + 1 {
            return Err("offsets length mismatch".into());
        }
        if !self.offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("offsets not monotone".into());
        }
        if self.src.len() < self.dst.len() {
            return Err("src shorter than dst".into());
        }
        for (a, b) in self.dst.iter().zip(&self.src) {
            if a != b {
                return Err("src prefix differs from dst".into());
            }
        }
        if let Some(&i) = self.indices.iter().find(|&&i| i as usize >= self.src.len()) {
            return Err(format!("local index {i} out of range"));
        }
        Ok(())
    }
}

/// The four component buffers of a recycled [`Block`], ready to be cleared
/// and refilled by the next sampling call. Contents are stale garbage;
/// only the capacity matters.
#[derive(Clone, Debug, Default)]
pub struct BlockParts {
    /// Spent destination-vertex buffer.
    pub dst: Vec<VertexId>,
    /// Spent source-vertex buffer.
    pub src: Vec<VertexId>,
    /// Spent per-dst offset buffer.
    pub offsets: Vec<u32>,
    /// Spent local-index buffer.
    pub indices: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        // dst = [10, 20]; src = [10, 20, 30, 40];
        // 10 aggregates from {30}, 20 aggregates from {30, 40}.
        Block::new(
            vec![10, 20],
            vec![10, 20, 30, 40],
            vec![0, 1, 3],
            vec![2, 2, 3],
        )
    }

    #[test]
    fn accessors_reflect_structure() {
        let b = sample_block();
        assert_eq!(b.num_dst(), 2);
        assert_eq!(b.num_src(), 4);
        assert_eq!(b.num_edges(), 3);
        assert_eq!(b.neighbors_local(0), &[2]);
        assert_eq!(b.neighbors_local(1), &[2, 3]);
        assert_eq!(b.sampled_degree(1), 2);
        assert!(b.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "src must contain dst as prefix")]
    fn rejects_src_shorter_than_dst() {
        let _ = Block::new(vec![1, 2], vec![1], vec![0, 0, 0], vec![]);
    }

    #[test]
    fn partition_src_covers_every_position_once() {
        let b = sample_block();
        let (hits, misses) = b.partition_src(|v| v % 20 == 10);
        assert_eq!(hits, &[0, 2]); // src 10 and 30
        assert_eq!(misses, &[1, 3]); // src 20 and 40
        let (all, none) = b.partition_src(|_| true);
        assert_eq!(all, &[0, 1, 2, 3]);
        assert!(none.is_empty());
    }

    #[test]
    fn partition_src_into_matches_allocating_variant_on_dirty_buffers() {
        let b = sample_block();
        let (want_hits, want_misses) = b.partition_src(|v| v % 20 == 10);
        let mut hits = vec![99u32; 7];
        let mut misses = vec![42u32];
        b.partition_src_into(|v| v % 20 == 10, &mut hits, &mut misses);
        assert_eq!(hits, want_hits);
        assert_eq!(misses, want_misses);
    }

    #[test]
    fn into_parts_round_trips_the_buffers() {
        let b = sample_block();
        let (dst, src) = (b.dst().to_vec(), b.src().to_vec());
        let parts = b.into_parts();
        assert_eq!(parts.dst, dst);
        assert_eq!(parts.src, src);
        assert_eq!(parts.offsets.len(), dst.len() + 1);
    }

    #[test]
    fn empty_block_is_valid() {
        let b = Block::new(vec![], vec![], vec![0], vec![]);
        assert_eq!(b.num_edges(), 0);
        assert!(b.validate().is_ok());
    }
}
