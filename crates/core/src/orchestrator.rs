//! The orchestrator abstraction and shared workload arithmetic.

use crate::profile::WorkloadProfile;
use crate::report::EpochReport;
use neutron_hetero::{HardwareSpec, OomError};
use neutron_nn::flops;
use neutron_nn::model::ModelConfig;

/// A task-orchestration strategy (one path through the paper's Fig 1 tree,
/// or NeutronOrch's layer-based split).
pub trait Orchestrator {
    /// Display name used in tables/figures.
    fn name(&self) -> String;

    /// Simulates one epoch on `hw`; `Err` is an OOM, matching the "OOM"
    /// cells of the paper's tables.
    fn simulate_epoch(
        &self,
        profile: &WorkloadProfile,
        hw: &HardwareSpec,
    ) -> Result<EpochReport, OomError>;
}

/// Derived per-batch workload arithmetic shared by every orchestrator.
pub struct Lens<'a> {
    /// The profiled workload.
    pub profile: &'a WorkloadProfile,
    /// Per-layer `(in_dim, out_dim)`.
    pub dims: Vec<(usize, usize)>,
}

impl<'a> Lens<'a> {
    /// Builds the lens for a profile.
    pub fn new(profile: &'a WorkloadProfile) -> Self {
        let cfg = ModelConfig {
            kind: profile.config.kind,
            feature_dim: profile.spec.feature_dim,
            hidden_dim: profile.spec.hidden_dim,
            num_classes: profile.spec.num_classes,
            layers: profile.config.layers,
            seed: 0,
        };
        Self {
            profile,
            dims: cfg.layer_dims(),
        }
    }

    /// Total sampled edges of batch `i` (the sampling workload).
    pub fn sampled_edges(&self, i: usize) -> u64 {
        self.profile.stats(i).total_edges() as u64
    }

    /// Forward+backward FLOPs of batch `i` over all layers.
    pub fn train_flops(&self, i: usize) -> u64 {
        let stats = self.profile.stats(i);
        stats
            .layers
            .iter()
            .zip(&self.dims)
            .map(|(l, &(din, dout))| {
                flops::layer_train_flops(
                    self.profile.config.kind,
                    l.num_dst as u64,
                    l.num_src as u64,
                    l.num_edges as u64,
                    din as u64,
                    dout as u64,
                )
            })
            .sum()
    }

    /// FLOPs of batch `i` split into (bottom layer over **cold** dst only,
    /// all upper layers) — NeutronOrch's layer-based division (§4.1.1).
    pub fn train_flops_layer_split(&self, i: usize) -> (u64, u64) {
        let stats = self.profile.stats(i);
        let (din, dout) = self.dims[0];
        let bottom = &stats.layers[0];
        let cold_dst = bottom
            .num_dst
            .saturating_sub((bottom.num_dst as f64 * self.hot_dst_fraction()) as usize);
        let bottom_cold = flops::layer_train_flops(
            self.profile.config.kind,
            cold_dst as u64,
            stats.bottom_cold_src as u64,
            stats.bottom_cold_edges as u64,
            din as u64,
            dout as u64,
        );
        let upper: u64 = stats
            .layers
            .iter()
            .zip(&self.dims)
            .skip(1)
            .map(|(l, &(di, dn))| {
                flops::layer_train_flops(
                    self.profile.config.kind,
                    l.num_dst as u64,
                    l.num_src as u64,
                    l.num_edges as u64,
                    di as u64,
                    dn as u64,
                )
            })
            .sum();
        (bottom_cold, upper)
    }

    /// Fraction of bottom-layer destinations served by hot embeddings.
    fn hot_dst_fraction(&self) -> f64 {
        let s = self.profile.stats(0);
        let total = (s.bottom_hot_src + s.bottom_cold_src).max(1);
        s.bottom_hot_src as f64 / total as f64
    }

    /// Activation bytes batch `i` keeps on the training device.
    pub fn activation_bytes(&self, i: usize) -> u64 {
        let stats = self.profile.stats(i);
        stats
            .layers
            .iter()
            .zip(&self.dims)
            .map(|(l, &(din, dout))| {
                flops::layer_activation_bytes(
                    l.num_dst as u64,
                    l.num_src as u64,
                    din as u64,
                    dout as u64,
                )
            })
            .sum()
    }

    /// Raw feature bytes of batch `i`'s bottom-layer source set.
    pub fn bottom_feature_bytes(&self, i: usize) -> u64 {
        self.profile.stats(i).bottom_src() as u64 * self.profile.spec.feature_row_bytes()
    }

    /// Bytes of the sampled subgraph structure (u32 src/dst per edge).
    pub fn block_bytes(&self, i: usize) -> u64 {
        self.sampled_edges(i) * 8
    }

    /// Bytes of the model parameters (weights only, f32).
    pub fn param_bytes(&self) -> u64 {
        let per_layer_factor: u64 = match self.profile.config.kind {
            neutron_nn::LayerKind::Gcn => 1,
            neutron_nn::LayerKind::Sage => 2,
            neutron_nn::LayerKind::Gat => 1,
        };
        self.dims
            .iter()
            .map(|&(i, o)| per_layer_factor * (i as u64 * o as u64 + o as u64) * 4)
            .sum()
    }

    /// Peak batch bytes across the epoch (for memory sizing).
    pub fn max_activation_bytes(&self) -> u64 {
        (0..self.profile.per_batch.len())
            .map(|i| self.activation_bytes(i))
            .max()
            .unwrap_or(0)
    }

    /// Bottom-layer hidden-embedding bytes for batch `i`'s dst set — what a
    /// layer-based split transfers *instead of* neighbor features (Fig 7).
    pub fn bottom_embedding_bytes(&self, i: usize) -> u64 {
        self.profile.stats(i).layers[0].num_dst as u64 * self.profile.spec.hidden_row_bytes()
    }

    // ------------------------------------------------------------------
    // Paper-scale memory estimators.
    //
    // Compute and transfer workloads use replica-measured statistics, but
    // *memory* effects (cache ratios, OOM) are capacity phenomena of the
    // full-size datasets. These estimators reconstruct paper-scale working
    // sets analytically (top-down fanout expansion with birthday-paradox
    // dedup), so the ledger can run against the real 16 GB V100 budget.
    // ------------------------------------------------------------------

    /// Estimated per-layer `(dst, src)` sizes at **paper scale** for a batch
    /// of `seeds`, bottom layer first.
    pub fn paper_layer_sizes(&self, seeds: usize) -> Vec<(f64, f64)> {
        let v = self.profile.spec.paper_vertices as f64;
        let fanout = self.profile.config.fanout();
        let mut sizes_top_down = Vec::with_capacity(fanout.layers());
        let mut dst = seeds as f64;
        for l in (0..fanout.layers()).rev() {
            let picks = dst * (fanout.at(l) as f64 + 1.0);
            // Expected unique vertices after `picks` draws from `v`.
            let uniq = v * (1.0 - (-picks / v).exp());
            let src = picks.min(uniq);
            sizes_top_down.push((dst, src));
            dst = src;
        }
        sizes_top_down.reverse();
        sizes_top_down
    }

    /// Estimated GPU bytes one in-flight batch occupies at paper scale:
    /// bottom-layer features + hidden activations (value+grad) + block
    /// structure.
    pub fn paper_batch_bytes(&self, seeds: usize) -> u64 {
        let sizes = self.paper_layer_sizes(seeds);
        let feat = self.profile.spec.feature_row_bytes() as f64;
        let hid = self.profile.spec.hidden_row_bytes() as f64;
        let bottom_src = sizes.first().map(|&(_, s)| s).unwrap_or(0.0);
        let mut bytes = bottom_src * feat;
        for &(dst, src) in sizes.iter().skip(1) {
            bytes += (src + dst) * hid * 2.0;
        }
        // Sampled structure: ~8 bytes per sampled edge.
        let fanout = self.profile.config.fanout();
        for (l, &(dst, _)) in sizes.iter().enumerate() {
            bytes += dst * fanout.at(l) as f64 * 8.0;
        }
        bytes as u64
    }

    /// Paper-scale topology bytes (CSR offsets + targets).
    pub fn paper_topology_bytes(&self) -> u64 {
        self.profile.spec.paper_edges * 4 + self.profile.spec.paper_vertices * 8
    }

    /// Paper-scale bytes of the full feature matrix.
    pub fn paper_feature_bytes(&self) -> u64 {
        self.profile.spec.paper_vertices * self.profile.spec.feature_row_bytes()
    }

    /// Sizes a feature cache of `budget_bytes` at paper scale and returns
    /// `(cache_ratio, expected_hit_rate)`. Hit rates use the paper-scale
    /// access-skew model; degree ranking (PaGraph) pays a penalty versus
    /// pre-sampling (GNNLab), matching the paper's Fig 13 ordering.
    pub fn cache_plan(&self, budget_bytes: u64, degree_ranked: bool) -> (f64, f64) {
        let row = self.profile.spec.feature_row_bytes().max(1);
        let cache_n_paper = (budget_bytes / row).min(self.profile.spec.paper_vertices);
        let ratio = cache_n_paper as f64 / self.profile.spec.paper_vertices as f64;
        let hit = self.profile.paper_coverage(ratio);
        if degree_ranked {
            (ratio, hit * 0.85)
        } else {
            (ratio, hit)
        }
    }

    /// Paper-scale GAS working set: the batch's full 1-hop neighborhood.
    pub fn paper_one_hop_bytes(&self, seeds: usize) -> u64 {
        let v = self.profile.spec.paper_vertices as f64;
        let picks = seeds as f64 * (self.profile.avg_degree + 1.0);
        let src = picks.min(v * (1.0 - (-picks / v).exp()));
        let feat = self.profile.spec.feature_row_bytes() as f64;
        let hid = self.profile.spec.hidden_row_bytes() as f64;
        let layers = self.profile.config.layers as f64;
        (src * feat + (src + seeds as f64) * hid * 2.0 * layers) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadConfig;
    use neutron_graph::DatasetSpec;
    use neutron_nn::LayerKind;

    fn lens_fixture() -> WorkloadProfile {
        let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
        cfg.batch_size = 64;
        cfg.layers = 2;
        cfg.profiled_batches = 2;
        WorkloadProfile::build(&DatasetSpec::tiny(), &cfg)
    }

    #[test]
    fn flops_split_is_less_than_total() {
        let p = lens_fixture();
        let lens = Lens::new(&p);
        let total = lens.train_flops(0);
        let (bottom_cold, upper) = lens.train_flops_layer_split(0);
        assert!(
            bottom_cold + upper <= total,
            "{bottom_cold}+{upper} vs {total}"
        );
        assert!(upper > 0);
    }

    #[test]
    fn bottom_feature_bytes_use_spec_dim() {
        let p = lens_fixture();
        let lens = Lens::new(&p);
        let expect = p.stats(0).bottom_src() as u64 * 16 * 4; // tiny: 16 dims
        assert_eq!(lens.bottom_feature_bytes(0), expect);
    }

    #[test]
    fn embedding_transfer_is_smaller_than_feature_transfer() {
        // Tiny replica: hidden 8 < features 16, dst < src — the Fig 7 claim.
        let p = lens_fixture();
        let lens = Lens::new(&p);
        assert!(lens.bottom_embedding_bytes(0) < lens.bottom_feature_bytes(0));
    }

    #[test]
    fn param_bytes_positive_and_kind_sensitive() {
        let p = lens_fixture();
        let lens = Lens::new(&p);
        assert!(lens.param_bytes() > 0);
    }

    #[test]
    fn activation_bytes_grow_with_batch_content() {
        let p = lens_fixture();
        let lens = Lens::new(&p);
        assert!(
            lens.max_activation_bytes() >= lens.activation_bytes(0).min(lens.activation_bytes(1))
        );
    }
}
